package pfs

import (
	"errors"
	"fmt"

	"paracrash/internal/blockdev"
	"paracrash/internal/causality"
	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// ServerFS is a simulated user-level PFS server process with a local file
// system (the paper's BeeGFS/OrangeFS/GlusterFS daemons on ext4).
type ServerFS struct {
	Proc string
	FS   *vfs.FS
}

// NewServerFS returns a server with an empty local file system.
func NewServerFS(proc string) *ServerFS {
	return &ServerFS{Proc: proc, FS: vfs.New()}
}

// Do records op as a lowermost trace entry attributed to the server and
// applies it to the local file system. fileID names the file identity for
// commit coverage; tag carries semantic information for pruning. Apply
// errors propagate (during normal execution they indicate a PFS bug in the
// simulator itself, so callers treat them as fatal).
func (s *ServerFS) Do(rec *trace.Recorder, op vfs.Op, fileID, tag string) error {
	rec.Record(trace.Op{
		Layer:    trace.LayerLocalFS,
		Proc:     s.Proc,
		Name:     op.Kind.String(),
		Path:     op.Path,
		Path2:    op.Path2,
		Offset:   op.Offset,
		Size:     int64(len(op.Data)),
		Meta:     op.Kind.Meta(),
		Sync:     op.Kind == vfs.OpSync,
		FileID:   fileID,
		Tag:      tag,
		Payload:  op,
		DataSync: false,
	})
	return s.FS.Apply(op)
}

// DoSync records an fsync (dataOnly selects fdatasync) on fileID.
func (s *ServerFS) DoSync(rec *trace.Recorder, path, fileID string, dataOnly bool) error {
	name := "fsync"
	if dataOnly {
		name = "fdatasync"
	}
	rec.Record(trace.Op{
		Layer:    trace.LayerLocalFS,
		Proc:     s.Proc,
		Name:     name,
		Path:     path,
		Meta:     true,
		Sync:     true,
		DataSync: dataOnly,
		FileID:   fileID,
		Payload:  vfs.Op{Kind: vfs.OpSync, Path: path},
	})
	return nil
}

// BlockServer is a simulated kernel-level PFS server with a block device
// (the paper's GPFS NSD / Lustre ldiskfs targets traced over iSCSI).
type BlockServer struct {
	Proc string
	Dev  *blockdev.Dev
}

// NewBlockServer returns a server with an empty block device.
func NewBlockServer(proc string) *BlockServer {
	return &BlockServer{Proc: proc, Dev: blockdev.New()}
}

// Write records and applies a block write. tag describes the structure the
// block holds ("log", "inode", "dir", "data", ...).
func (s *BlockServer) Write(rec *trace.Recorder, lba int64, data []byte, tag string) {
	op := blockdev.Op{Kind: blockdev.OpWrite, LBA: lba, Data: append([]byte(nil), data...)}
	rec.Record(trace.Op{
		Layer:   trace.LayerBlock,
		Proc:    s.Proc,
		Name:    "scsi_write",
		Offset:  lba,
		Size:    int64(len(data)),
		Meta:    tag != "data",
		Tag:     tag,
		Payload: op,
	})
	if err := s.Dev.Apply(op); err != nil {
		panic(fmt.Sprintf("pfs: block apply: %v", err))
	}
}

// Sync records and applies a device-wide write barrier.
func (s *BlockServer) Sync(rec *trace.Recorder) {
	op := blockdev.Op{Kind: blockdev.OpSync}
	rec.Record(trace.Op{
		Layer:   trace.LayerBlock,
		Proc:    s.Proc,
		Name:    "scsi_sync",
		Meta:    true,
		Sync:    true,
		Payload: op,
	})
}

// Cluster bundles the shared mechanics of a simulated PFS deployment:
// the recorder, the server stores, RPC bookkeeping and striping math.
// Concrete PFS implementations embed it.
type Cluster struct {
	Rec  *trace.Recorder
	Conf Config

	FSServers    []*ServerFS    // user-level servers in Procs order
	BlockServers []*BlockServer // kernel-level servers in Procs order

	// tagHint, when set by an upper layer (the I/O library's object map),
	// overrides the default semantic tag of data writes so lowermost ops
	// carry labels like "h5:data:/g1/d1" for pruning and correlation.
	tagHint string

	// obsRun, when set, receives restore/recover/mount timings. Nil (the
	// default) disables collection; TimeOp then returns a no-op stop.
	obsRun *obs.Run

	// faults, when set, is consulted at the cluster's fault points
	// (lowermost replay, recovery, mount). Nil (the default) disables
	// injection at zero cost.
	faults *faultinject.Plan
}

// ObsAware is implemented by file systems that can attach an observability
// run (every Cluster-based FileSystem). The explorer sets the run on the
// primary cluster and on each worker clone; a shared *obs.Run is safe for
// concurrent use.
type ObsAware interface {
	SetObs(*obs.Run)
}

// SetObs attaches (or, with nil, detaches) the observability run.
func (c *Cluster) SetObs(r *obs.Run) { c.obsRun = r }

// FaultAware is implemented by file systems that can arm a fault-injection
// plan (every Cluster-based FileSystem). The explorer arms the plan on the
// primary cluster and on each worker clone; a shared *faultinject.Plan is
// safe for concurrent use.
type FaultAware interface {
	SetFaults(*faultinject.Plan)
}

// SetFaults arms (or, with nil, disarms) the fault-injection plan.
func (c *Cluster) SetFaults(p *faultinject.Plan) { c.faults = p }

// FaultPoint consults the armed plan at a named fault site; backends call
// it at the top of Recover and Mount. Nil-safe no-op when no plan is armed.
func (c *Cluster) FaultPoint(site, key string) error { return c.faults.Point(site, key) }

// TimeOp starts a named timer span on the attached run and returns its stop
// function; allocation-free no-op when no run is attached. Backends wrap
// their Recover/Mount bodies with it ("pfs/recover", "pfs/mount").
func (c *Cluster) TimeOp(name string) func() { return c.obsRun.StartTimer(name) }

// SetTagHint sets (or, with "", clears) the semantic tag applied to
// subsequent data writes. Exposed on every FileSystem via the embedded
// Cluster.
func (c *Cluster) SetTagHint(tag string) { c.tagHint = tag }

// DataTag returns the upper-layer tag hint if one is set, def otherwise.
func (c *Cluster) DataTag(def string) string {
	if c.tagHint != "" {
		return c.tagHint
	}
	return def
}

// TagHinter is implemented by file systems whose data writes can carry
// upper-layer semantic tags (every Cluster-based FileSystem).
type TagHinter interface {
	SetTagHint(tag string)
}

// NewCluster returns a cluster with the given user-level server procs.
func NewCluster(conf Config, rec *trace.Recorder, fsProcs []string) *Cluster {
	c := &Cluster{Rec: rec, Conf: conf}
	for _, p := range fsProcs {
		c.FSServers = append(c.FSServers, NewServerFS(p))
	}
	return c
}

// NewBlockCluster returns a cluster with the given kernel-level server procs.
func NewBlockCluster(conf Config, rec *trace.Recorder, blockProcs []string) *Cluster {
	c := &Cluster{Rec: rec, Conf: conf}
	for _, p := range blockProcs {
		c.BlockServers = append(c.BlockServers, NewBlockServer(p))
	}
	return c
}

// Procs returns the lowermost proc names, FS servers then block servers.
func (c *Cluster) Procs() []string {
	var out []string
	for _, s := range c.FSServers {
		out = append(out, s.Proc)
	}
	for _, s := range c.BlockServers {
		out = append(out, s.Proc)
	}
	return out
}

// FSServer returns the user-level server with the given proc name.
func (c *Cluster) FSServer(proc string) *ServerFS {
	for _, s := range c.FSServers {
		if s.Proc == proc {
			return s
		}
	}
	return nil
}

// BlockServer returns the kernel-level server with the given proc name.
func (c *Cluster) Block(proc string) *BlockServer {
	for _, s := range c.BlockServers {
		if s.Proc == proc {
			return s
		}
	}
	return nil
}

// Snapshot captures every server store.
func (c *Cluster) Snapshot() *State {
	st := &State{FS: map[string]*vfs.FS{}, Dev: map[string]*blockdev.Dev{}}
	for _, s := range c.FSServers {
		st.FS[s.Proc] = s.FS.Snapshot()
	}
	for _, s := range c.BlockServers {
		st.Dev[s.Proc] = s.Dev.Snapshot()
	}
	return st
}

// Restore resets every server store to st.
func (c *Cluster) Restore(st *State) {
	defer c.TimeOp("pfs/restore-all")()
	for _, s := range c.FSServers {
		if snap, ok := st.FS[s.Proc]; ok {
			s.FS.Restore(snap)
		}
	}
	for _, s := range c.BlockServers {
		if snap, ok := st.Dev[s.Proc]; ok {
			s.Dev.Restore(snap)
		}
	}
}

// RestoreServer resets one server store to its state in st.
func (c *Cluster) RestoreServer(st *State, proc string) {
	defer c.TimeOp("pfs/restore-server")()
	if s := c.FSServer(proc); s != nil {
		if snap, ok := st.FS[proc]; ok {
			s.FS.Restore(snap)
		}
		return
	}
	if s := c.Block(proc); s != nil {
		if snap, ok := st.Dev[proc]; ok {
			s.Dev.Restore(snap)
		}
	}
}

// ApplyLowermost applies a recorded lowermost op to the live store of the
// proc it was traced on. With a fault plan armed, the replay is a fault
// point keyed by the op identity: a torn-write injection applies the first
// half of the payload before surfacing the error (the partially persisted
// metadata the paper's crash model worries about), every other injected
// kind loses the op entirely. Callers distinguish injected errors (retry
// the whole reconstruction) from genuine apply errors (crash semantics:
// the op's effect is lost) via faultinject.Is.
func (c *Cluster) ApplyLowermost(op *trace.Op) error {
	switch p := op.Payload.(type) {
	case vfs.Op:
		s := c.FSServer(op.Proc)
		if s == nil {
			return fmt.Errorf("pfs: apply: unknown fs proc %q", op.Proc)
		}
		if ferr := c.faults.Point("pfs/apply", op.Key()); ferr != nil {
			if isTorn(ferr) && len(p.Data) > 1 {
				half := p
				half.Data = p.Data[:len(p.Data)/2]
				_ = s.FS.Apply(half)
			}
			return ferr
		}
		return s.FS.Apply(p)
	case blockdev.Op:
		s := c.Block(op.Proc)
		if s == nil {
			return fmt.Errorf("pfs: apply: unknown block proc %q", op.Proc)
		}
		if ferr := c.faults.Point("pfs/apply", op.Key()); ferr != nil {
			if isTorn(ferr) && len(p.Data) > 1 {
				half := p
				half.Data = p.Data[:len(p.Data)/2]
				_ = s.Dev.Apply(half)
			}
			return ferr
		}
		return s.Dev.Apply(p)
	default:
		return fmt.Errorf("pfs: apply: op %s has no replayable payload", op)
	}
}

// isTorn reports whether an injected fault is a torn write.
func isTorn(err error) bool {
	var fe *faultinject.Error
	return errors.As(err, &fe) && fe.Kind == faultinject.KindTorn
}

// PersistConfig builds the Algorithm 2 configuration: every FS server uses
// the configured journaling mode, every block server uses barriers.
func (c *Cluster) PersistConfig() causality.PersistConfig {
	cfg := causality.PersistConfig{
		Journal: map[string]vfs.JournalMode{},
		Block:   map[string]bool{},
	}
	for _, s := range c.FSServers {
		cfg.Journal[s.Proc] = c.Conf.Journal
	}
	for _, s := range c.BlockServers {
		cfg.Block[s.Proc] = true
	}
	return cfg
}

// RPC simulates a synchronous remote procedure call from fromProc to
// toProc: it records the request send/recv pair, runs handler with the
// server as the recording context (ops it records pick up the recv op as
// caller), then records the reply pair. This yields exactly the
// sendto/recvfrom causality edges of the paper's Figure 2 traces.
func (c *Cluster) RPC(fromProc, toProc string, handler func()) {
	req := c.Rec.NewMsgID()
	send := c.Rec.Record(trace.Op{
		Layer: trace.LayerPFS, Proc: fromProc,
		Name: "sendto", Path: toProc, MsgID: req, IsSend: true,
	})
	parent := send.ID
	if parent <= 0 {
		parent = -1
	}
	c.Rec.Push(trace.Op{
		Layer: trace.LayerLocalFS, Proc: toProc,
		Name: "recvfrom", Path: fromProc, MsgID: req, Parent: parent,
	})
	handler()
	c.Rec.Pop(toProc)
	rep := c.Rec.NewMsgID()
	c.Rec.Record(trace.Op{
		Layer: trace.LayerLocalFS, Proc: toProc,
		Name: "sendto", Path: fromProc, MsgID: rep, IsSend: true,
	})
	c.Rec.Record(trace.Op{
		Layer: trace.LayerPFS, Proc: fromProc,
		Name: "recvfrom", Path: toProc, MsgID: rep,
	})
}

// ServerRPC simulates a server-to-server call (e.g. BeeGFS metadata server
// instructing a storage server), recorded at the lowermost layer on both
// sides.
func (c *Cluster) ServerRPC(fromProc, toProc string, handler func()) {
	req := c.Rec.NewMsgID()
	send := c.Rec.Record(trace.Op{
		Layer: trace.LayerLocalFS, Proc: fromProc,
		Name: "sendto", Path: toProc, MsgID: req, IsSend: true,
	})
	parent := send.ID
	if parent <= 0 {
		parent = -1
	}
	c.Rec.Push(trace.Op{
		Layer: trace.LayerLocalFS, Proc: toProc,
		Name: "recvfrom", Path: fromProc, MsgID: req, Parent: parent,
	})
	handler()
	c.Rec.Pop(toProc)
	rep := c.Rec.NewMsgID()
	c.Rec.Record(trace.Op{
		Layer: trace.LayerLocalFS, Proc: toProc,
		Name: "sendto", Path: fromProc, MsgID: rep, IsSend: true,
	})
	c.Rec.Record(trace.Op{
		Layer: trace.LayerLocalFS, Proc: fromProc,
		Name: "recvfrom", Path: toProc, MsgID: rep,
	})
}

// RecordClientOp records a PFS-layer client call and returns it; callers
// wrap the op's server work between this and PopClient so lowermost ops
// pick up the caller edge.
func (c *Cluster) RecordClientOp(proc, name, path, path2 string, off int64, data []byte) *trace.Op {
	op := trace.Op{
		Layer:  trace.LayerPFS,
		Proc:   proc,
		Name:   name,
		Path:   path,
		Path2:  path2,
		Offset: off,
		FileID: path,
		Meta:   name != "pwrite" && name != "append",
		Sync:   name == "fsync",
	}
	if data != nil {
		op.Data = append([]byte(nil), data...)
		op.Size = int64(len(data))
	}
	return c.Rec.Push(op)
}

// PopClient ends the in-flight client call for proc.
func (c *Cluster) PopClient(proc string) { c.Rec.Pop(proc) }

// Stripe describes one stripe of a striped write: which server index it
// lands on, the local offset within the per-server chunk, and the global
// byte range it covers.
type Stripe struct {
	Server      int
	LocalOffset int64
	GlobalOff   int64
	Data        []byte
}

// StripeRange splits the byte range [off, off+len(data)) into stripes over
// n servers with the configured stripe size, starting at server base (file
// placement). Standard round-robin striping: global stripe s lives on
// server (base + s) mod n at local offset (s / n) * stripeSize.
func StripeRange(off int64, data []byte, n int, stripeSize int64, base int) []Stripe {
	if n <= 0 {
		n = 1
	}
	if stripeSize <= 0 {
		stripeSize = 1
	}
	var out []Stripe
	pos := int64(0)
	for pos < int64(len(data)) {
		g := off + pos
		s := g / stripeSize
		inStripe := g % stripeSize
		take := stripeSize - inStripe
		if rem := int64(len(data)) - pos; take > rem {
			take = rem
		}
		out = append(out, Stripe{
			Server:      (base + int(s)) % n,
			LocalOffset: (s/int64(n))*stripeSize + inStripe,
			GlobalOff:   g,
			Data:        data[pos : pos+take],
		})
		pos += take
	}
	return out
}

// UnstripeSize computes the global file size implied by per-server chunk
// lengths under the same striping layout.
func UnstripeSize(chunkLens []int64, n int, stripeSize int64, base int) int64 {
	var max int64
	for srv := 0; srv < n; srv++ {
		l := chunkLens[srv]
		if l == 0 {
			continue
		}
		// The last local byte on srv is at local offset l-1, i.e. local
		// stripe (l-1)/stripeSize, which is global stripe
		// ((l-1)/stripeSize)*n + serverSlot where serverSlot is srv's
		// position in the rotation.
		slot := (srv - base + n) % n
		localStripe := (l - 1) / stripeSize
		globalStripe := localStripe*int64(n) + int64(slot)
		end := globalStripe*stripeSize + ((l-1)%stripeSize + 1)
		if end > max {
			max = end
		}
	}
	return max
}

// ReassembleFile reconstructs global file content from per-server chunk
// reads. readChunk returns the local chunk contents for a server index
// (nil if the chunk does not exist).
func ReassembleFile(n int, stripeSize int64, base int, readChunk func(srv int) []byte) []byte {
	chunks := make([][]byte, n)
	lens := make([]int64, n)
	for i := 0; i < n; i++ {
		chunks[i] = readChunk(i)
		lens[i] = int64(len(chunks[i]))
	}
	size := UnstripeSize(lens, n, stripeSize, base)
	out := make([]byte, size)
	for g := int64(0); g < size; g += stripeSize {
		s := g / stripeSize
		srv := (base + int(s)) % n
		local := (s / int64(n)) * stripeSize
		end := local + stripeSize
		chunk := chunks[srv]
		if local >= int64(len(chunk)) {
			continue
		}
		if end > int64(len(chunk)) {
			end = int64(len(chunk))
		}
		copy(out[g:], chunk[local:end])
	}
	return out
}
