// Package orangefs simulates OrangeFS/PVFS2 (paper Figure 9b): a user-level
// PFS whose metadata servers store dentries and attributes in a Berkeley-DB
// style key-value store. Every 4 KB page write to the database is followed
// by an fdatasync — this is why OrangeFS orders its metadata updates and
// avoids BeeGFS's bug #2, while remaining vulnerable to storage/metadata
// reordering (bug #1) and cross-server metadata reordering (bug #4).
//
// Metadata layout (per metadata server):
//
//	/db/keyval.db   page-per-record store: dentry records
//	/db/attrs.db    page-per-record store: attribute records
//
// Records are JSON {k, v, seq, del} padded to PageSize; on mount the pages
// are scanned and the highest sequence number per key wins. File data lives
// in bstream files /bstreams/<fid>.bstream on the storage servers. When a
// rename replaces a file, the replaced bstream is first renamed to a
// stranded name and only unlinked after the metadata commit; pvfs2-fsck
// recovers stranded bstreams that are still referenced.
package orangefs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// PageSize is the database page size (scaled down from 4 KB to keep traces
// small; the value is behaviourally irrelevant because pages are atomic).
const PageSize = 256

// record is one database record.
type record struct {
	K   string `json:"k"`
	V   string `json:"v"`
	Seq int    `json:"seq"`
	Del bool   `json:"del,omitempty"`
}

// dentryVal is the JSON value of a dentry record.
type dentryVal struct {
	T     string `json:"t"` // "f" or "d"
	ID    string `json:"id"`
	Owner int    `json:"owner,omitempty"` // dirs: owning metadata server
	Base  int    `json:"base,omitempty"`  // files: first stripe target
}

// FS is a simulated OrangeFS deployment.
type FS struct {
	*pfs.Cluster
	conf pfs.Config

	nextDirID  int
	nextFileID int
	nextSeq    int
	// nextPage allocates log-structured DB pages per (proc, db). Page
	// indices are an allocation detail, derivable by scanning the file.
	nextPage map[string]int
}

// New creates an OrangeFS deployment and initialises the root directory.
func New(conf pfs.Config, rec *trace.Recorder) *FS {
	var procs []string
	for i := 0; i < conf.MetaServers; i++ {
		procs = append(procs, fmt.Sprintf("meta/%d", i))
	}
	for i := 0; i < conf.StorageServers; i++ {
		procs = append(procs, fmt.Sprintf("storage/%d", i))
	}
	f := &FS{
		Cluster:    pfs.NewCluster(conf, rec, procs),
		conf:       conf,
		nextDirID:  1,
		nextFileID: 1,
		nextSeq:    1,
		nextPage:   map[string]int{},
	}
	for i := 0; i < conf.MetaServers; i++ {
		fs := f.meta(i).FS
		must(fs.Mkdir("/db"))
		must(fs.Create("/db/keyval.db"))
		must(fs.Create("/db/attrs.db"))
	}
	for i := 0; i < conf.StorageServers; i++ {
		must(f.storage(i).FS.Mkdir("/bstreams"))
	}
	return f
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("orangefs: setup: %v", err))
	}
}

// CloneDetached implements pfs.Cloner: a fresh deployment with an untraced
// recorder, carrying over the ID/sequence/page allocators so replayed
// client operations never collide with identifiers present in restored
// snapshots.
func (f *FS) CloneDetached() pfs.FileSystem {
	rec := trace.NewRecorder()
	rec.SetEnabled(false)
	c := New(f.conf, rec)
	c.nextDirID, c.nextFileID, c.nextSeq = f.nextDirID, f.nextFileID, f.nextSeq
	c.nextPage = make(map[string]int, len(f.nextPage))
	for k, v := range f.nextPage {
		c.nextPage[k] = v
	}
	return c
}

// Name implements pfs.FileSystem.
func (f *FS) Name() string { return "orangefs" }

// Config implements pfs.FileSystem.
func (f *FS) Config() pfs.Config { return f.conf }

// Recorder implements pfs.FileSystem.
func (f *FS) Recorder() *trace.Recorder { return f.Rec }

func (f *FS) meta(i int) *pfs.ServerFS    { return f.FSServers[i] }
func (f *FS) storage(i int) *pfs.ServerFS { return f.FSServers[f.conf.MetaServers+i] }

func (f *FS) metaProc(i int) string    { return fmt.Sprintf("meta/%d", i) }
func (f *FS) storageProc(i int) string { return fmt.Sprintf("storage/%d", i) }

// Client implements pfs.FileSystem.
func (f *FS) Client(id int) pfs.Client {
	return &client{fs: f, proc: fmt.Sprintf("client/%d", id)}
}

// dbTxn writes the given records as ONE transaction: a single page write
// (Berkeley DB transactions commit atomically through the DB's own log)
// followed by the fdatasync of Figure 9b. Must run inside an RPC handler so
// the ops pick up the caller edge. The store is log-structured: each
// transaction gets a fresh page and the highest sequence number per key
// wins at scan time.
func (f *FS) dbTxn(mi int, db string, recs []record, tag string) error {
	proc := f.metaProc(mi)
	dbPath := "/db/" + db
	slot := proc + "|" + dbPath
	page := f.nextPage[slot]
	f.nextPage[slot]++
	for i := range recs {
		recs[i].Seq = f.nextSeq
		f.nextSeq++
	}
	buf, err := json.Marshal(recs)
	if err != nil {
		return err
	}
	if len(buf) > PageSize {
		return fmt.Errorf("orangefs: transaction of %d records exceeds page size", len(recs))
	}
	padded := make([]byte, PageSize)
	copy(padded, buf)
	m := f.meta(mi)
	if err := m.Do(f.Rec, vfs.Op{Kind: vfs.OpWrite, Path: dbPath, Offset: int64(page) * PageSize, Data: padded}, dbPath, tag); err != nil {
		return err
	}
	return m.DoSync(f.Rec, dbPath, dbPath, true)
}

// dbPut writes (or tombstones) a single record in db on metadata server mi.
func (f *FS) dbPut(mi int, db, key, val string, del bool, tag string) error {
	return f.dbTxn(mi, db, []record{{K: key, V: val, Del: del}}, tag)
}

// dbScan reads every record of db on metadata server mi; for each key the
// record with the highest sequence number wins. Unparseable pages are
// skipped (a lost page is a lost transaction).
func (f *FS) dbScan(mi int, db string) map[string]record {
	data, err := f.meta(mi).FS.Read("/db/" + db)
	if err != nil {
		return map[string]record{}
	}
	out := map[string]record{}
	for off := 0; off+PageSize <= len(data); off += PageSize {
		page := data[off : off+PageSize]
		end := strings.IndexByte(string(page), 0)
		if end < 0 {
			end = len(page)
		}
		var recs []record
		if err := json.Unmarshal(page[:end], &recs); err != nil {
			continue
		}
		for _, rec := range recs {
			if rec.K == "" {
				continue
			}
			if old, ok := out[rec.K]; !ok || rec.Seq > old.Seq {
				out[rec.K] = rec
			}
		}
	}
	return out
}

// dbGet returns the live value of key in db on server mi.
func (f *FS) dbGet(mi int, db, key string) (string, bool) {
	rec, ok := f.dbScan(mi, db)[key]
	if !ok || rec.Del {
		return "", false
	}
	return rec.V, true
}

type dirRef struct {
	owner int
	id    string
}

type fileRef struct {
	dir  dirRef
	name string
	fid  string
	base int
}

func splitPath(p string) (dir, name string) {
	p = vfs.Clean(p)
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

func (f *FS) resolveDir(path string) (dirRef, error) {
	cur := dirRef{owner: 0, id: "root"}
	path = vfs.Clean(path)
	if path == "/" {
		return cur, nil
	}
	for _, comp := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
		v, ok := f.dbGet(cur.owner, "keyval.db", "d:"+cur.id+":"+comp)
		if !ok {
			return dirRef{}, fmt.Errorf("orangefs: %q: no such directory", path)
		}
		var dv dentryVal
		if err := json.Unmarshal([]byte(v), &dv); err != nil || dv.T != "d" {
			return dirRef{}, fmt.Errorf("orangefs: %q: not a directory", path)
		}
		cur = dirRef{owner: dv.Owner, id: dv.ID}
	}
	return cur, nil
}

func (f *FS) resolveFile(path string) (fileRef, error) {
	dir, name := splitPath(path)
	dr, err := f.resolveDir(dir)
	if err != nil {
		return fileRef{}, err
	}
	v, ok := f.dbGet(dr.owner, "keyval.db", "d:"+dr.id+":"+name)
	if !ok {
		return fileRef{}, fmt.Errorf("orangefs: %q: no such file", path)
	}
	var dv dentryVal
	if err := json.Unmarshal([]byte(v), &dv); err != nil || dv.T != "f" {
		return fileRef{}, fmt.Errorf("orangefs: %q: not a regular file", path)
	}
	return fileRef{dir: dr, name: name, fid: dv.ID, base: dv.Base}, nil
}

func (f *FS) pickBase(path string) int {
	if f.conf.FilePlacement != nil {
		if b, ok := f.conf.FilePlacement[vfs.Clean(path)]; ok {
			return b % f.conf.StorageServers
		}
	}
	h := fnv.New32a()
	h.Write([]byte(vfs.Clean(path)))
	return int(h.Sum32()) % f.conf.StorageServers
}

func (f *FS) pickDirOwner(path string) int {
	if f.conf.DirPlacement != nil {
		if o, ok := f.conf.DirPlacement[vfs.Clean(path)]; ok {
			return o % f.conf.MetaServers
		}
	}
	return f.nextDirID % f.conf.MetaServers
}

func marshalDentry(dv dentryVal) string {
	b, _ := json.Marshal(dv)
	return string(b)
}

type client struct {
	fs   *FS
	proc string
}

func (c *client) Proc() string { return c.proc }

// Create adds the dentry and attribute records on the metadata server and
// creates the bstream on the base storage target.
func (c *client) Create(path string) error {
	f := c.fs
	dir, name := splitPath(path)
	dr, err := f.resolveDir(dir)
	if err != nil {
		return err
	}
	fid := fmt.Sprintf("f%d", f.nextFileID)
	f.nextFileID++
	base := f.pickBase(path)

	f.RecordClientOp(c.proc, "creat", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(dr.owner), func() {
		err2 = firstErr(err2, f.dbPut(dr.owner, "keyval.db", "d:"+dr.id+":"+name,
			marshalDentry(dentryVal{T: "f", ID: fid, Base: base}), false, "keyval.db"))
		err2 = firstErr(err2, f.dbPut(dr.owner, "attrs.db", "a:"+fid, "size=0", false, "attrs.db"))
	})
	f.RPC(c.proc, f.storageProc(base), func() {
		s := f.storage(base)
		err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: "/bstreams/" + fid + ".bstream"}, fid, "bstream"))
	})
	return err2
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// Mkdir adds the dentry on the parent's owner and attributes on the new
// directory's owner.
func (c *client) Mkdir(path string) error {
	f := c.fs
	dir, name := splitPath(path)
	dr, err := f.resolveDir(dir)
	if err != nil {
		return err
	}
	owner := f.pickDirOwner(path)
	id := fmt.Sprintf("d%d", f.nextDirID)
	f.nextDirID++

	f.RecordClientOp(c.proc, "mkdir", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(dr.owner), func() {
		err2 = firstErr(err2, f.dbPut(dr.owner, "keyval.db", "d:"+dr.id+":"+name,
			marshalDentry(dentryVal{T: "d", ID: id, Owner: owner}), false, "keyval.db"))
	})
	f.RPC(c.proc, f.metaProc(owner), func() {
		err2 = firstErr(err2, f.dbPut(owner, "attrs.db", "a:"+id, "dir", false, "attrs.db"))
	})
	return err2
}

func (c *client) bstream(fid string) string { return "/bstreams/" + fid + ".bstream" }

// WriteAt stripes data across storage servers into the bstream files.
func (c *client) WriteAt(path string, off int64, data []byte) error {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	f.RecordClientOp(c.proc, "pwrite", vfs.Clean(path), "", off, data)
	defer f.PopClient(c.proc)

	var err2 error
	for _, st := range pfs.StripeRange(off, data, f.conf.StorageServers, f.conf.StripeSize, fr.base) {
		st := st
		f.RPC(c.proc, f.storageProc(st.Server), func() {
			s := f.storage(st.Server)
			b := c.bstream(fr.fid)
			if !s.FS.Exists(b) {
				err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: b}, fr.fid, "bstream"))
			}
			sz, _ := s.FS.Size(b)
			op := vfs.Op{Kind: vfs.OpWrite, Path: b, Offset: st.LocalOffset, Data: st.Data}
			if st.LocalOffset == sz {
				op = vfs.Op{Kind: vfs.OpAppend, Path: b, Data: st.Data}
			}
			err2 = firstErr(err2, s.Do(f.Rec, op, fr.fid, f.DataTag("bstream")))
		})
	}
	return err2
}

// Append appends at end of file.
func (c *client) Append(path string, data []byte) error {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	lens := make([]int64, f.conf.StorageServers)
	for i := range lens {
		if sz, err := f.storage(i).FS.Size(c.bstream(fr.fid)); err == nil {
			lens[i] = sz
		}
	}
	return c.WriteAt(path, pfs.UnstripeSize(lens, f.conf.StorageServers, f.conf.StripeSize, fr.base), data)
}

// Read reassembles the file.
func (c *client) Read(path string) ([]byte, error) {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return nil, err
	}
	return f.readFile(fr.fid, fr.base), nil
}

func (f *FS) readFile(fid string, base int) []byte {
	return pfs.ReassembleFile(f.conf.StorageServers, f.conf.StripeSize, base, func(srv int) []byte {
		b, err := f.storage(srv).FS.Read("/bstreams/" + fid + ".bstream")
		if err != nil {
			return nil
		}
		return b
	})
}

// Rename implements Figure 9b: the replaced file's bstream is renamed to a
// stranded name before the metadata commit and unlinked only afterwards,
// which (together with per-update fdatasync) closes BeeGFS's bug #2.
func (c *client) Rename(from, to string) error {
	f := c.fs
	fr, err := f.resolveFile(from)
	if err != nil {
		if _, derr := f.resolveDir(from); derr == nil {
			return c.renameDir(from, to)
		}
		return err
	}
	toDir, toName := splitPath(to)
	dst, err := f.resolveDir(toDir)
	if err != nil {
		return err
	}
	var old fileRef
	hasOld := false
	if o, err := f.resolveFile(to); err == nil {
		old, hasOld = o, true
	}

	f.RecordClientOp(c.proc, "rename", vfs.Clean(from), vfs.Clean(to), 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	// Step 1: strand the replaced bstream (data preserved for recovery).
	if hasOld {
		for i := 0; i < f.conf.StorageServers; i++ {
			srv := i
			if !f.storage(srv).FS.Exists(c.bstream(old.fid)) {
				continue
			}
			f.RPC(c.proc, f.storageProc(srv), func() {
				s := f.storage(srv)
				err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{
					Kind: vfs.OpRename, Path: c.bstream(old.fid), Path2: "/bstreams/stranded-" + old.fid,
				}, old.fid, "bstream"))
			})
		}
	}
	// Step 2: metadata commit. Updates on one metadata server are a single
	// DB transaction (atomic); cross-server renames need two transactions,
	// which is the root of the CR bug.
	sameServer := fr.dir.owner == dst.owner
	f.RPC(c.proc, f.metaProc(dst.owner), func() {
		recs := []record{{
			K: "d:" + dst.id + ":" + toName,
			V: marshalDentry(dentryVal{T: "f", ID: fr.fid, Base: fr.base}),
		}}
		if sameServer && (fr.dir.id != dst.id || fr.name != toName) {
			recs = append(recs, record{K: "d:" + fr.dir.id + ":" + fr.name, Del: true})
		}
		err2 = firstErr(err2, f.dbTxn(dst.owner, "keyval.db", recs, "keyval.db"))
		err2 = firstErr(err2, f.dbPut(dst.owner, "attrs.db", "a:"+fr.fid, "renamed", false, "attrs.db"))
	})
	if !sameServer {
		f.RPC(c.proc, f.metaProc(fr.dir.owner), func() {
			err2 = firstErr(err2, f.dbPut(fr.dir.owner, "keyval.db", "d:"+fr.dir.id+":"+fr.name,
				"", true, "keyval.db"))
		})
	}
	// Step 3: drop the stranded bstream after the commit.
	if hasOld {
		for i := 0; i < f.conf.StorageServers; i++ {
			srv := i
			if !f.storage(srv).FS.Exists("/bstreams/stranded-" + old.fid) {
				continue
			}
			f.RPC(c.proc, f.storageProc(srv), func() {
				s := f.storage(srv)
				err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{
					Kind: vfs.OpUnlink, Path: "/bstreams/stranded-" + old.fid,
				}, old.fid, "bstream"))
			})
		}
	}
	return err2
}

// renameDir renames a directory entry within the same parent.
func (c *client) renameDir(from, to string) error {
	f := c.fs
	fromParent, fromName := splitPath(from)
	toParent, toName := splitPath(to)
	if vfs.Clean(fromParent) != vfs.Clean(toParent) {
		return fmt.Errorf("orangefs: cross-directory dir rename not supported")
	}
	pr, err := f.resolveDir(fromParent)
	if err != nil {
		return err
	}
	dr, err := f.resolveDir(from)
	if err != nil {
		return err
	}
	f.RecordClientOp(c.proc, "rename", vfs.Clean(from), vfs.Clean(to), 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(pr.owner), func() {
		err2 = firstErr(err2, f.dbTxn(pr.owner, "keyval.db", []record{
			{K: "d:" + pr.id + ":" + toName, V: marshalDentry(dentryVal{T: "d", ID: dr.id, Owner: dr.owner})},
			{K: "d:" + pr.id + ":" + fromName, Del: true},
		}, "keyval.db"))
	})
	return err2
}

// Unlink tombstones the metadata records and removes the bstreams.
func (c *client) Unlink(path string) error {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	f.RecordClientOp(c.proc, "unlink", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(fr.dir.owner), func() {
		err2 = firstErr(err2, f.dbPut(fr.dir.owner, "keyval.db", "d:"+fr.dir.id+":"+fr.name, "", true, "keyval.db"))
		err2 = firstErr(err2, f.dbPut(fr.dir.owner, "attrs.db", "a:"+fr.fid, "", true, "attrs.db"))
	})
	for i := 0; i < f.conf.StorageServers; i++ {
		srv := i
		if !f.storage(srv).FS.Exists(c.bstream(fr.fid)) {
			continue
		}
		f.RPC(c.proc, f.storageProc(srv), func() {
			s := f.storage(srv)
			err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: c.bstream(fr.fid)}, fr.fid, "bstream"))
		})
	}
	return err2
}

// Fsync flushes the file's bstreams on their storage servers.
func (c *client) Fsync(path string) error {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	op := f.RecordClientOp(c.proc, "fsync", vfs.Clean(path), "", 0, nil)
	op.Sync = true
	defer f.PopClient(c.proc)

	for i := 0; i < f.conf.StorageServers; i++ {
		srv := i
		if !f.storage(srv).FS.Exists(c.bstream(fr.fid)) {
			continue
		}
		f.RPC(c.proc, f.storageProc(srv), func() {
			_ = f.storage(srv).DoSync(f.Rec, c.bstream(fr.fid), fr.fid, false)
		})
	}
	return nil
}

// Close records the client-level close.
func (c *client) Close(path string) error {
	f := c.fs
	f.RecordClientOp(c.proc, "close", vfs.Clean(path), "", 0, nil)
	f.PopClient(c.proc)
	return nil
}

// Recover implements pvfs2-fsck: it recovers stranded bstreams that are
// still referenced by the database and removes those that are not.
func (f *FS) Recover() error {
	defer f.TimeOp("pfs/recover")()
	if err := f.FaultPoint("pfs/recover", f.Name()); err != nil {
		return err
	}
	// Collect referenced file IDs across all metadata servers.
	referenced := map[string]bool{}
	for mi := 0; mi < f.conf.MetaServers; mi++ {
		for k, rec := range f.dbScan(mi, "keyval.db") {
			if rec.Del || !strings.HasPrefix(k, "d:") {
				continue
			}
			var dv dentryVal
			if json.Unmarshal([]byte(rec.V), &dv) == nil && dv.T == "f" {
				referenced[dv.ID] = true
			}
		}
	}
	for si := 0; si < f.conf.StorageServers; si++ {
		s := f.storage(si).FS
		entries, err := s.List("/bstreams")
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e[strings.LastIndexByte(e, '/')+1:]
			if !strings.HasPrefix(name, "stranded-") {
				continue
			}
			fid := strings.TrimPrefix(name, "stranded-")
			live := "/bstreams/" + fid + ".bstream"
			if referenced[fid] && !s.Exists(live) {
				_ = s.Rename(e, live)
			} else {
				_ = s.Unlink(e)
			}
		}
	}
	return nil
}

// Mount materialises the logical namespace by walking the databases.
func (f *FS) Mount() (*pfs.Tree, error) {
	defer f.TimeOp("pfs/mount")()
	if err := f.FaultPoint("pfs/mount", f.Name()); err != nil {
		return nil, err
	}
	t := pfs.NewTree()
	var walk func(path string, dr dirRef) error
	walk = func(path string, dr dirRef) error {
		if dr.owner >= f.conf.MetaServers {
			return fmt.Errorf("orangefs: mount: bad owner %d", dr.owner)
		}
		prefix := "d:" + dr.id + ":"
		for k, rec := range f.dbScan(dr.owner, "keyval.db") {
			if rec.Del || !strings.HasPrefix(k, prefix) {
				continue
			}
			name := strings.TrimPrefix(k, prefix)
			child := vfs.Clean(path + "/" + name)
			var dv dentryVal
			if err := json.Unmarshal([]byte(rec.V), &dv); err != nil {
				return fmt.Errorf("orangefs: mount: corrupt dentry %q: %v", k, err)
			}
			switch dv.T {
			case "d":
				t.AddDir(child)
				if err := walk(child, dirRef{owner: dv.Owner, id: dv.ID}); err != nil {
					return err
				}
			case "f":
				t.AddFile(child, f.readFile(dv.ID, dv.Base))
			default:
				return fmt.Errorf("orangefs: mount: unknown dentry type %q", dv.T)
			}
		}
		return nil
	}
	if err := walk("/", dirRef{owner: 0, id: "root"}); err != nil {
		return nil, err
	}
	return t, nil
}
