package orangefs

import (
	"strings"
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(pfs.DefaultConfig(), trace.NewRecorder())
}

func TestEveryDBWriteIsSynced(t *testing.T) {
	// Figure 9b: each database page write is followed by an fdatasync.
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	ops := f.Recorder().Ops()
	for i, o := range ops {
		if o.Name != "pwrite" || !strings.HasPrefix(o.Path, "/db/") {
			continue
		}
		if i+1 >= len(ops) || ops[i+1].Name != "fdatasync" || ops[i+1].Path != o.Path {
			t.Fatalf("DB write #%d not followed by fdatasync: next=%v", o.ID, ops[i+1])
		}
	}
}

func TestDBScanNewestWinsAndSkipsTornPages(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	// The dentry for /a was rewritten (tombstone has a higher seq).
	if _, ok := f.dbGet(0, "keyval.db", "d:root:a"); ok {
		t.Fatal("tombstoned key still visible")
	}
	if _, ok := f.dbGet(0, "keyval.db", "d:root:b"); !ok {
		t.Fatal("renamed key missing")
	}
	// Failure injection: tear a page (overwrite half with garbage) — the
	// scan must skip it without failing.
	m := f.meta(0).FS
	if err := m.WriteAt("/db/keyval.db", 0, []byte("garbage-not-json")); err != nil {
		t.Fatal(err)
	}
	recs := f.dbScan(0, "keyval.db")
	for k := range recs {
		if !strings.HasPrefix(k, "d:") {
			t.Fatalf("torn page leaked record %q", k)
		}
	}
}

func TestStrandedBstreamRecovery(t *testing.T) {
	// pvfs2-fsck renames a stranded bstream back when the database still
	// references its file ID (the crash before the metadata commit).
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt("/foo", 0, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	fr, err := f.resolveFile("/foo")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the stranding step persisting without the commit.
	for i := 0; i < f.conf.StorageServers; i++ {
		s := f.storage(i).FS
		if s.Exists("/bstreams/" + fr.fid + ".bstream") {
			if err := s.Rename("/bstreams/"+fr.fid+".bstream", "/bstreams/stranded-"+fr.fid); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read("/foo")
	if err != nil || string(got) != "precious" {
		t.Fatalf("stranded bstream not recovered: %q, %v", got, err)
	}
}

func TestStrandedOrphanRemoved(t *testing.T) {
	// A stranded bstream whose file ID is no longer referenced is deleted.
	f := newFS(t)
	s := f.storage(0).FS
	if err := s.Create("/bstreams/stranded-f99"); err != nil {
		t.Fatal(err)
	}
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/bstreams/stranded-f99") {
		t.Fatal("orphaned stranded bstream not removed")
	}
}

func TestSameDirRenameIsOneTransaction(t *testing.T) {
	// A rename within one directory commits both dentry records in a
	// single page write (Berkeley DB transaction).
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/a"); err != nil {
		t.Fatal(err)
	}
	rec := f.Recorder()
	before := len(rec.Ops())
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	keyvalWrites := 0
	for _, o := range rec.Ops()[before:] {
		if o.Name == "pwrite" && o.Path == "/db/keyval.db" {
			keyvalWrites++
		}
	}
	if keyvalWrites != 1 {
		t.Fatalf("same-dir rename used %d keyval writes, want 1 (transactional)", keyvalWrites)
	}
}

func TestMountWalksNestedDirs(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.Mkdir("/d1"))
	must(c.Mkdir("/d1/d2"))
	must(c.Create("/d1/d2/f"))
	must(c.WriteAt("/d1/d2/f", 0, []byte("deep")))
	tree, err := f.Mount()
	must(err)
	e, ok := tree.Entries["/d1/d2/f"]
	if !ok || string(e.Data) != "deep" {
		t.Fatalf("nested mount wrong:\n%s", tree.Serialize())
	}
}
