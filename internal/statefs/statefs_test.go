package statefs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
)

// Test sites, one per op kind (registered once — the registry is global).
var (
	tsAtomic  = Register("test/atomic", OpAtomic)
	tsExcl    = Register("test/excl", OpExclusive)
	tsJournal = Register("test/journal", OpJournal)
	tsRename  = RegisterRecovery("test/rename", OpRename)
)

// TestMain doubles the test binary as a crash-op subprocess: when the
// scenario marker is set it performs one statefs operation (crashing at
// whatever point the environment arms) instead of running the tests.
func TestMain(m *testing.M) {
	if os.Getenv("STATEFS_OP_UNDER_TEST") != "" {
		runOpScenario()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runOpScenario performs the op named by STATEFS_OP_UNDER_TEST against
// STATEFS_DIR; the crash env (if armed) kills it mid-flight.
func runOpScenario() {
	dir := os.Getenv("STATEFS_DIR")
	payload := []byte(`{"payload":"0123456789abcdef"}` + "\n")
	var err error
	switch op := os.Getenv("STATEFS_OP_UNDER_TEST"); op {
	case "atomic":
		err = WriteBytes(tsAtomic, filepath.Join(dir, "rec.json"), payload)
	case "excl":
		err = CreateExclusive(tsExcl, filepath.Join(dir, "lock.json"), payload)
	case "journal":
		err = Append(tsJournal, filepath.Join(dir, "log.jsonl"), payload)
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", op)
		os.Exit(3)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runOp re-executes the test binary as one statefs op with a crash point
// armed, returning the exit code.
func runOp(t *testing.T, dir, op, point string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"STATEFS_OP_UNDER_TEST="+op,
		"STATEFS_DIR="+dir,
		EnvCrashPoint+"="+point,
	)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0
	}
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) {
		return exitErr.ExitCode()
	}
	t.Fatalf("running op subprocess: %v (stderr: %s)", err, stderr.String())
	return -1
}

func TestWriteBytesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := WriteJSON(tsAtomic, path, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("WriteJSON output is not newline-terminated")
	}
	var got map[string]int
	if err := json.Unmarshal(data, &got); err != nil || got["x"] != 1 {
		t.Fatalf("round trip failed: %v %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after a clean write")
	}
}

func TestCreateExclusiveLosesSecondRace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lock.json")
	if err := CreateExclusiveJSON(tsExcl, path, map[string]int{"epoch": 1}); err != nil {
		t.Fatal(err)
	}
	err := CreateExclusiveJSON(tsExcl, path, map[string]int{"epoch": 2})
	if err == nil || !os.IsExist(err) {
		t.Fatalf("second create should fail with IsExist, got %v", err)
	}
}

func TestAppendAccumulates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.jsonl")
	for i := 0; i < 3; i++ {
		if err := Append(tsJournal, path, []byte(fmt.Sprintf("{\"n\":%d}\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3: %q", len(lines), data)
	}
}

func TestRenameMoves(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.json")
	dst := filepath.Join(dir, "sub", "dst.json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytes(tsAtomic, src, []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if err := Rename(tsRename, src, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Error("source survived the rename")
	}
	if _, err := os.Stat(dst); err != nil {
		t.Errorf("destination missing after rename: %v", err)
	}
}

// TestCrashPointCatalogue pins the registry contract: every non-recovery
// site expands to one point per stage of its op, recovery sites to none.
func TestCrashPointCatalogue(t *testing.T) {
	points := map[string]bool{}
	for _, p := range CrashPoints() {
		points[p] = true
	}
	for _, stage := range OpAtomic.Stages() {
		if !points["test/atomic@"+stage] {
			t.Errorf("catalogue misses test/atomic@%s", stage)
		}
	}
	for _, stage := range OpRename.Stages() {
		if points["test/rename@"+stage] {
			t.Errorf("recovery site leaked into the catalogue: test/rename@%s", stage)
		}
	}
}

// TestCrashStages kills a subprocess at every stage of every op and
// asserts the simulated post-crash disk state is exactly what the stage
// documents.
func TestCrashStages(t *testing.T) {
	payload := `{"payload":"0123456789abcdef"}` + "\n"
	cases := []struct {
		op    string
		point string
		check func(t *testing.T, dir string)
	}{
		{"atomic", "test/atomic@" + StageTornTmp, func(t *testing.T, dir string) {
			tmp := readOrEmpty(t, filepath.Join(dir, "rec.json.tmp"))
			if len(tmp) == 0 || len(tmp) >= len(payload) {
				t.Errorf("torn tmp should hold a strict prefix, has %d bytes", len(tmp))
			}
			if _, err := os.Stat(filepath.Join(dir, "rec.json")); !os.IsNotExist(err) {
				t.Error("destination appeared despite torn-tmp crash")
			}
		}},
		{"atomic", "test/atomic@" + StagePreRename, func(t *testing.T, dir string) {
			if got := readOrEmpty(t, filepath.Join(dir, "rec.json.tmp")); string(got) != payload {
				t.Errorf("pre-rename tmp should be complete, got %q", got)
			}
			if _, err := os.Stat(filepath.Join(dir, "rec.json")); !os.IsNotExist(err) {
				t.Error("destination appeared despite pre-rename crash")
			}
		}},
		{"atomic", "test/atomic@" + StagePostRename, func(t *testing.T, dir string) {
			if got := readOrEmpty(t, filepath.Join(dir, "rec.json")); string(got) != payload {
				t.Errorf("post-rename destination should be complete, got %q", got)
			}
			if _, err := os.Stat(filepath.Join(dir, "rec.json.tmp")); !os.IsNotExist(err) {
				t.Error("tmp survived the rename")
			}
		}},
		{"excl", "test/excl@" + StageTornCreate, func(t *testing.T, dir string) {
			got := readOrEmpty(t, filepath.Join(dir, "lock.json"))
			if len(got) == 0 || len(got) >= len(payload) {
				t.Errorf("torn create should hold a strict prefix, has %d bytes", len(got))
			}
		}},
		{"excl", "test/excl@" + StagePostCreate, func(t *testing.T, dir string) {
			if got := readOrEmpty(t, filepath.Join(dir, "lock.json")); string(got) != payload {
				t.Errorf("post-create file should be complete, got %q", got)
			}
		}},
		{"journal", "test/journal@" + StageTornAppend, func(t *testing.T, dir string) {
			got := readOrEmpty(t, filepath.Join(dir, "log.jsonl"))
			if len(got) == 0 || len(got) >= len(payload) {
				t.Errorf("torn append should hold a strict prefix, has %d bytes", len(got))
			}
			if strings.HasSuffix(string(got), "\n") {
				t.Error("torn append ended on a record boundary — not torn")
			}
		}},
		{"journal", "test/journal@" + StagePostAppend, func(t *testing.T, dir string) {
			if got := readOrEmpty(t, filepath.Join(dir, "log.jsonl")); string(got) != payload {
				t.Errorf("post-append journal should carry the record, got %q", got)
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.point, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			if code := runOp(t, dir, tc.op, tc.point); code != CrashExitCode {
				t.Fatalf("subprocess exited %d, want the crash code %d", code, CrashExitCode)
			}
			tc.check(t, dir)
		})
	}
}

// TestCrashHitSelectsTraversal: with HIT=2 the first traversal survives
// and the second dies.
func TestCrashHitSelectsTraversal(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"STATEFS_OP_UNDER_TEST=journal", "STATEFS_DIR="+dir,
		EnvCrashPoint+"=test/journal@"+StagePostAppend, EnvCrashHit+"=2",
	)
	if err := cmd.Run(); err != nil {
		t.Fatalf("first traversal should survive with HIT=2: %v", err)
	}
	cmd = exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"STATEFS_OP_UNDER_TEST=journal", "STATEFS_DIR="+dir,
		EnvCrashPoint+"=test/journal@"+StagePostAppend, EnvCrashHit+"=1",
	)
	err := cmd.Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != CrashExitCode {
		t.Fatalf("second run with HIT=1 should crash, got %v", err)
	}
}

// TestSoftFaults: an armed faultinject plan surfaces errors instead of
// killing the process, and a torn draw plants a torn temp file.
func TestSoftFaults(t *testing.T) {
	defer Arm(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")

	Arm(faultinject.New(faultinject.Config{
		Seed: 1, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindErr},
		Sites: []string{"statefs/test/atomic"},
	}))
	err := WriteBytes(tsAtomic, path, []byte("hello world\n"))
	if !faultinject.Is(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The quota healed the point: the retry succeeds.
	if err := WriteBytes(tsAtomic, path, []byte("hello world\n")); err != nil {
		t.Fatalf("healed retry failed: %v", err)
	}

	Arm(faultinject.New(faultinject.Config{
		Seed: 1, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindTorn},
		Sites: []string{"statefs/test/atomic"},
	}))
	tornPath := filepath.Join(dir, "torn.json")
	err = WriteBytes(tsAtomic, tornPath, []byte("hello world\n"))
	if !faultinject.Is(err) {
		t.Fatalf("want injected torn error, got %v", err)
	}
	tmp := readOrEmpty(t, tornPath+".tmp")
	if len(tmp) == 0 || len(tmp) >= len("hello world\n") {
		t.Errorf("torn fault should leave a strict-prefix tmp, has %d bytes", len(tmp))
	}
}

// TestCoverageCounts: completed ops tick the site counters and the armed
// obs run.
func TestCoverageCounts(t *testing.T) {
	defer SetObs(nil)
	run := obs.NewRun()
	SetObs(run)
	dir := t.TempDir()
	before := tsAtomic.Writes()
	if err := WriteBytes(tsAtomic, filepath.Join(dir, "c.json"), []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if got := tsAtomic.Writes(); got != before+1 {
		t.Errorf("site writes %d, want %d", got, before+1)
	}
	if got := run.Counter("statefs/test/atomic").Value(); got != 1 {
		t.Errorf("obs site counter %d, want 1", got)
	}
	if Coverage()["test/atomic"] < 1 {
		t.Error("Coverage misses the site")
	}
}

func readOrEmpty(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return data
}
