// Package statefs is the single audited persistence layer of the daemon's
// state plane: every durable write the service makes — job records, lease
// files, shard tasks and results, checkpoint journals — goes through one of
// its three disciplines instead of ad-hoc os calls:
//
//   - OpAtomic: temp file in the target directory, write, fsync, rename
//     over the destination, fsync the parent directory.
//   - OpExclusive: O_EXCL create (the cross-process mutual-exclusion
//     primitive), write, fsync, fsync the parent directory.
//   - OpJournal: append to an existing journal, fsync before returning, so
//     a record is durable before it is acknowledged.
//
// Funnelling every write through here buys two things. First, the
// discipline is implemented once and audited once — the class of bug this
// project exists to find (missing parent-directory fsync, ack-before-flush
// journals, non-atomic replace) cannot quietly reappear at a new call
// site, and internal/tools/persistlint enforces the funnel mechanically.
// Second, every write site becomes a named crash point: each stage of each
// discipline can simulate the machine dying right there — leaving a torn
// temp file, a fully-written-but-unrenamed temp, a renamed file whose
// directory entry was never synced, a half-appended journal record — and
// exit the process, so the daemon's own recovery path (serve.Fsck, store
// reload, lease reclaim, checkpoint resume) is testable with the same
// bounded black-box crash testing the checker applies to file systems.
// The `make selfcheck` harness enumerates CrashPoints and kills a live
// daemon at every one of them.
//
// Crash points are armed through the environment (EnvCrashPoint names a
// "<site>@<stage>" point, EnvCrashHit selects which traversal fires) so a
// re-exec harness can drive them without code hooks. Soft faults reuse the
// internal/faultinject site machinery: Arm installs a Plan consulted as
// "statefs/<site>" before every write, with KindTorn surfacing as a torn
// temp file plus an error — the recoverable sibling of the torn-tmp crash.
package statefs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
)

// CrashExitCode is the exit status of a process killed at an armed crash
// point, distinct from ordinary failures so harnesses can tell "crashed
// where I asked" from "died of something else".
const CrashExitCode = 86

// Environment variables arming a crash point in this process.
const (
	// EnvCrashPoint names the point to crash at, as "<site>@<stage>"
	// (see CrashPoints for the catalogue).
	EnvCrashPoint = "PARACRASH_CRASHPOINT"
	// EnvCrashHit selects which traversal of the point fires (1-based,
	// default 1): "3" crashes the third time the point is reached.
	EnvCrashHit = "PARACRASH_CRASHPOINT_HIT"
)

// Op enumerates the durable-write disciplines statefs implements. Each op
// kind has a fixed set of crash-point stages (Stages).
type Op int

// The write disciplines.
const (
	// OpAtomic is temp + write + fsync + rename + parent-dir fsync.
	OpAtomic Op = iota
	// OpExclusive is O_EXCL create + write + fsync + parent-dir fsync.
	OpExclusive
	// OpJournal is append-to-journal + fsync (ack after flush).
	OpJournal
	// OpRename is a plain rename + parent-dir fsync (recovery moves).
	OpRename
)

// String names the op kind.
func (o Op) String() string {
	switch o {
	case OpAtomic:
		return "atomic"
	case OpExclusive:
		return "exclusive"
	case OpJournal:
		return "journal"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Stage names, shared across ops. Each stage's simulated post-crash disk
// state is documented where the op implements it.
const (
	// StageTornTmp dies mid-write of the temp file: a partial temp file
	// exists, the destination is untouched.
	StageTornTmp = "torn-tmp"
	// StagePreRename dies after the temp file is durable but before the
	// rename: a complete temp file exists, the destination is untouched.
	StagePreRename = "pre-rename"
	// StagePostRename dies after the rename but before the parent
	// directory fsync: the destination carries the new content (the other
	// legal outcome of a dropped directory fsync — destination reverted —
	// is exactly StagePreRename, so both are covered).
	StagePostRename = "post-rename"
	// StageTornCreate dies mid-write of an O_EXCL create: the file exists
	// with partial content.
	StageTornCreate = "torn-create"
	// StagePostCreate dies after the created file is durable but before
	// the parent directory fsync and the caller's acknowledgement.
	StagePostCreate = "post-create"
	// StageTornAppend dies mid-append: the journal carries a partial
	// record at its tail.
	StageTornAppend = "torn-append"
	// StagePostAppend dies after the appended records are durable but
	// before the caller's acknowledgement.
	StagePostAppend = "post-append"
)

// Stages returns the crash-point stages of the op kind, in execution order.
func (o Op) Stages() []string {
	switch o {
	case OpAtomic:
		return []string{StageTornTmp, StagePreRename, StagePostRename}
	case OpExclusive:
		return []string{StageTornCreate, StagePostCreate}
	case OpJournal:
		return []string{StageTornAppend, StagePostAppend}
	case OpRename:
		return []string{StagePostRename}
	default:
		return nil
	}
}

// Site is one registered durable-write site. Sites are registered once at
// package init of their owning package (so importing the daemon registers
// the full catalogue) and name both the faultinject site ("statefs/<name>")
// and the crash points ("<name>@<stage>").
type Site struct {
	name     string
	op       Op
	recovery bool

	writes atomic.Int64
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Op returns the site's write discipline.
func (s *Site) Op() Op { return s.op }

// Recovery reports whether the site is a recovery-path site (fsck repair
// moves and rewrites): excluded from the selfcheck must-hit catalogue,
// because recovery sites only run when there is damage to repair.
func (s *Site) Recovery() bool { return s.recovery }

// Writes returns how many operations completed through the site in this
// process — the coverage counter exported on /metrics.
func (s *Site) Writes() int64 { return s.writes.Load() }

var (
	regMu    sync.Mutex
	registry = map[string]*Site{}
	regOrder []string
)

// Register registers a durable-write site under a unique name and returns
// its handle. Registering the same name twice panics: the catalogue is the
// selfcheck contract and must not alias.
func Register(name string, op Op) *Site {
	return register(name, op, false)
}

// RegisterRecovery registers a recovery-path site: it gets the same
// discipline and instrumentation but is excluded from CrashPoints, since
// the selfcheck scenario cannot guarantee reaching repair code.
func RegisterRecovery(name string, op Op) *Site {
	return register(name, op, true)
}

func register(name string, op Op, recovery bool) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("statefs: duplicate site %q", name))
	}
	s := &Site{name: name, op: op, recovery: recovery}
	registry[name] = s
	regOrder = append(regOrder, name)
	return s
}

// Sites returns every registered site, sorted by name.
func Sites() []*Site {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Site, 0, len(registry))
	for _, name := range regOrder {
		out = append(out, registry[name])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// CrashPoints returns the "<site>@<stage>" catalogue of every non-recovery
// site, sorted — the set `make selfcheck` must kill the daemon at.
func CrashPoints() []string {
	var out []string
	for _, s := range Sites() {
		if s.recovery {
			continue
		}
		for _, stage := range s.op.Stages() {
			out = append(out, s.name+"@"+stage)
		}
	}
	sort.Strings(out)
	return out
}

// Coverage returns completed-write counts per site name, the raw material
// of the crash-point coverage metrics.
func Coverage() map[string]int64 {
	out := map[string]int64{}
	for _, s := range Sites() {
		out[s.name] = s.Writes()
	}
	return out
}

// ---- fault and crash arming ----

var (
	armedPlan atomic.Pointer[faultinject.Plan]
	armedObs  atomic.Pointer[obs.Run]

	crashOnce   sync.Once
	crashPoint  string // "<site>@<stage>", "" when unarmed
	crashTarget int64
	crashHits   atomic.Int64
)

// Arm installs a faultinject plan consulted (as site "statefs/<site>") by
// every subsequent operation; nil disarms. Soft faults surface as errors
// the caller retries or reports — the recoverable complement of the
// hard crash points.
func Arm(p *faultinject.Plan) { armedPlan.Store(p) }

// SetObs directs per-site write counters ("statefs/<site>") and the
// aggregate "statefs/writes" counter at the run; nil (or never calling)
// keeps counting process-locally only. The daemon points this at its
// process-level run so coverage reaches /metrics and -sink pipelines.
func SetObs(r *obs.Run) { armedObs.Store(r) }

// crashArming parses the environment once.
func crashArming() (string, int64) {
	crashOnce.Do(func() {
		crashPoint = os.Getenv(EnvCrashPoint)
		crashTarget = 1
		if v := os.Getenv(EnvCrashHit); v != "" {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
				crashTarget = n
			}
		}
	})
	return crashPoint, crashTarget
}

// at reports whether the armed crash point matches this site and stage
// and this traversal is the one that fires.
func (s *Site) at(stage string) bool {
	point, target := crashArming()
	if point == "" || point != s.name+"@"+stage {
		return false
	}
	return crashHits.Add(1) == target
}

// crash simulates dying at the stage: the disk already carries the
// simulated post-crash state, so the process just exits hard.
func (s *Site) crash(stage string) {
	if s.at(stage) {
		fmt.Fprintf(os.Stderr, "statefs: simulated crash at %s@%s\n", s.name, stage)
		os.Exit(CrashExitCode)
	}
}

// done counts a completed operation through the site.
func (s *Site) done() {
	s.writes.Add(1)
	if r := armedObs.Load(); r != nil {
		r.Counter("statefs/" + s.name).Inc()
		r.Counter("statefs/writes").Inc()
	}
}

// fault consults the armed plan for this operation. A KindTorn draw
// additionally plants a torn temp file (tornPath non-empty) so recovery
// code sees the same debris a torn-tmp crash leaves.
func (s *Site) fault(key string, tornPath string, data []byte) error {
	err := armedPlan.Load().Point("statefs/"+s.name, key)
	if err == nil {
		return nil
	}
	var fe *faultinject.Error
	if tornPath != "" && errors.As(err, &fe) && fe.Kind == faultinject.KindTorn {
		_ = os.WriteFile(tornPath, data[:len(data)/2], 0o644)
	}
	return err
}

// ---- operations ----

// WriteBytes atomically and durably replaces path with data: temp file in
// the same directory, write, fsync, rename, parent-directory fsync.
// Crash points: torn-tmp, pre-rename, post-rename.
func WriteBytes(site *Site, path string, data []byte) error {
	tmp := path + ".tmp"
	if err := site.fault(path, tmp, data); err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if site.at(StageTornTmp) {
		// Simulate dying mid-write: a prefix of the payload, never synced.
		_, _ = f.Write(data[:len(data)/2])
		_ = f.Close()
		fmt.Fprintf(os.Stderr, "statefs: simulated crash at %s@%s\n", site.name, StageTornTmp)
		os.Exit(CrashExitCode)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	site.crash(StagePreRename)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	site.crash(StagePostRename)
	if err := SyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	site.done()
	return nil
}

// WriteJSON marshals v (indented, newline-terminated) and WriteBytes it —
// the record format every JSON state file in the daemon uses.
func WriteJSON(site *Site, path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return WriteBytes(site, path, append(data, '\n'))
}

// CreateExclusive creates path with O_EXCL — exactly one concurrent
// creator succeeds — writes data, fsyncs the file and its parent
// directory. A losing creator gets an error satisfying os.IsExist.
// Crash points: torn-create, post-create.
func CreateExclusive(site *Site, path string, data []byte) error {
	if err := site.fault(path, "", nil); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if site.at(StageTornCreate) {
		_, _ = f.Write(data[:len(data)/2])
		_ = f.Close()
		fmt.Fprintf(os.Stderr, "statefs: simulated crash at %s@%s\n", site.name, StageTornCreate)
		os.Exit(CrashExitCode)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	site.crash(StagePostCreate)
	if err := SyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	site.done()
	return nil
}

// CreateExclusiveJSON marshals v (compact, newline-terminated) and
// CreateExclusive's it.
func CreateExclusiveJSON(site *Site, path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return CreateExclusive(site, path, append(data, '\n'))
}

// Append appends data to the journal at path (created if missing) and
// fsyncs before returning, so a record is durable before it is
// acknowledged — the ack-after-flush contract.
// Crash points: torn-append, post-append.
func Append(site *Site, path string, data []byte) error {
	if err := site.fault(path, "", nil); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if site.at(StageTornAppend) {
		_, _ = f.Write(data[:len(data)/2])
		_ = f.Close()
		fmt.Fprintf(os.Stderr, "statefs: simulated crash at %s@%s\n", site.name, StageTornAppend)
		os.Exit(CrashExitCode)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	site.crash(StagePostAppend)
	if err := f.Close(); err != nil {
		return err
	}
	site.done()
	return nil
}

// Rename moves old to new and fsyncs the destination's parent directory
// (and the source's, when different) — the recovery-path move fsck uses to
// quarantine damaged records. Crash point: post-rename.
func Rename(site *Site, oldPath, newPath string) error {
	if err := site.fault(newPath, "", nil); err != nil {
		return err
	}
	if err := os.Rename(oldPath, newPath); err != nil {
		return err
	}
	site.crash(StagePostRename)
	if err := SyncDir(filepath.Dir(newPath)); err != nil {
		return err
	}
	if od, nd := filepath.Dir(oldPath), filepath.Dir(newPath); od != nd {
		if err := SyncDir(od); err != nil {
			return err
		}
	}
	site.done()
	return nil
}

// SyncDir fsyncs a directory so a just-renamed or just-created entry's
// dentry is durable — the step whose absence this project exists to
// detect, exported so read-side packages can share the one audited copy.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
