package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyOrderVisitsAllOnce(t *testing.T) {
	dist := func(i, j int) int { return abs(i - j) }
	order := GreedyOrder(6, dist)
	if len(order) != 6 {
		t.Fatalf("len = %d", len(order))
	}
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("node %d visited twice", v)
		}
		seen[v] = true
	}
}

func TestGreedyOrderOnALine(t *testing.T) {
	// Nodes on a line starting at 0: greedy visits them in order, cost n-1.
	dist := func(i, j int) int { return abs(i - j) }
	order := GreedyOrder(5, dist)
	if TourCost(order, dist) != 4 {
		t.Fatalf("line tour cost = %d, want 4 (order %v)", TourCost(order, dist), order)
	}
}

func TestGreedyBeatsRandomOnClusters(t *testing.T) {
	// Two clusters of points: greedy should stay within a cluster before
	// jumping, beating the identity order.
	coords := []int{0, 1, 2, 100, 101, 102, 3, 103}
	dist := func(i, j int) int { return abs(coords[i] - coords[j]) }
	order := GreedyOrder(len(coords), dist)
	identity := make([]int, len(coords))
	for i := range identity {
		identity[i] = i
	}
	if TourCost(order, dist) >= TourCost(identity, dist) {
		t.Fatalf("greedy (%d) should beat identity (%d)",
			TourCost(order, dist), TourCost(identity, dist))
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if GreedyOrder(0, nil) != nil {
		t.Fatal("empty tour should be nil")
	}
	if got := GreedyOrder(1, func(i, j int) int { return 0 }); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-node tour = %v", got)
	}
}

func TestQuickGreedyIsAPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := rand.New(rand.NewSource(seed))
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := r.Intn(100)
				d[i][j], d[j][i] = v, v
			}
		}
		order := GreedyOrder(n, func(i, j int) int { return d[i][j] })
		if len(order) != n || order[0] != 0 {
			return false
		}
		seen := map[int]bool{}
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
