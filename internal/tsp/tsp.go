// Package tsp provides the greedy travelling-salesman ordering used by the
// optimized crash-state exploration (paper §5.3): crash states are nodes,
// the distance between two states is the number of PFS servers whose
// local state differs, and visiting states along a short tour minimises
// server restarts during incremental reconstruction.
//
// This mirrors the paper's use of the greedy, suboptimal tsp-solver2.
package tsp

// GreedyOrder returns a visiting order over n nodes starting at node 0,
// repeatedly moving to the nearest unvisited node (ties broken by lowest
// index). dist must be symmetric; it is called O(n²) times.
func GreedyOrder(n int, dist func(i, j int) int) []int {
	if n <= 0 {
		return nil
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	cur := 0
	visited[0] = true
	order = append(order, 0)
	for len(order) < n {
		best, bestD := -1, int(^uint(0)>>1)
		for j := 0; j < n; j++ {
			if visited[j] {
				continue
			}
			if d := dist(cur, j); d < bestD {
				best, bestD = j, d
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = best
	}
	return order
}

// TourCost returns the total distance of visiting nodes in the given order.
func TourCost(order []int, dist func(i, j int) int) int {
	total := 0
	for k := 1; k < len(order); k++ {
		total += dist(order[k-1], order[k])
	}
	return total
}
