package fuzzcamp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
	"paracrash/internal/paracrash"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// Config parameterises a campaign.
type Config struct {
	// Backends under test; empty means all six (exps.FSNames).
	Backends []string
	// SeedStart/Seeds select the random-generator workloads: seeds
	// [SeedStart, SeedStart+Seeds) through workloads.Generate with the
	// default shape. Seeds 0 with EnumOps 0 falls back to 16 seeds.
	SeedStart int64
	Seeds     int
	// EnumOps > 0 additionally enumerates every valid op sequence of length
	// 1..EnumOps (B3-style bounded systematic enumeration).
	EnumOps int
	// TimeBudget bounds the campaign wall time; cells not started before the
	// deadline are skipped and the result is marked TimedOut (0 = no limit).
	TimeBudget time.Duration
	// CorpusDir, when non-empty, receives a replayable repro file per
	// deduplicated violation.
	CorpusDir string
	// Workers is the number of concurrent cells (0 = GOMAXPROCS).
	Workers int
	// DiffWorkers is the worker count of the parallel run in the
	// serial-vs-parallel differential oracle (0 = 4).
	DiffWorkers int
	// MinimizeTests bounds predicate evaluations per minimization
	// (0 = 200).
	MinimizeTests int
	// Obs, when non-nil, receives campaign counters and the explorer's own
	// per-run metrics.
	Obs *obs.Run
	// Retry bounds per-crash-state fault recovery inside every explorer
	// invocation (the zero value is the explorer's default policy).
	Retry paracrash.RetryPolicy
	// FaultRate > 0 arms the deterministic fault plane: every explorer
	// invocation gets a fresh faultinject.Plan with this rate and FaultSeed,
	// so each cell sees identical fault weather across its serial, parallel
	// and pruned runs and the differential oracle stays sound. A cell whose
	// faults never heal is retried once, then skipped and counted in
	// Result.CellsFaulted — never fatal to the campaign.
	FaultRate float64
	// FaultSeed seeds the per-invocation fault plans (meaningful only with
	// FaultRate > 0).
	FaultSeed int64
	// DisableRepresentative turns representative-state exploration off in
	// every explorer invocation (and skips the representative-equivalence
	// oracle, which would be vacuous). The default (off) keeps the engine
	// default: representative exploration on.
	DisableRepresentative bool
	// Inject is a test-only hook registered as a fourth oracle: a non-empty
	// return marks the workload as violating with that detail string. The
	// campaign treats the hook itself as the minimization predicate, so
	// tests can verify the whole violation → minimize → corpus pipeline
	// without a real engine bug.
	Inject func(backend string, prog *workloads.Program) string
}

func (cfg Config) withDefaults() Config {
	if len(cfg.Backends) == 0 {
		cfg.Backends = exps.FSNames()
	}
	if cfg.Seeds < 0 {
		cfg.Seeds = 0
	}
	if cfg.Seeds == 0 && cfg.EnumOps <= 0 {
		cfg.Seeds = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.DiffWorkers <= 0 {
		cfg.DiffWorkers = 4
	}
	if cfg.MinimizeTests <= 0 {
		cfg.MinimizeTests = 200
	}
	return cfg
}

// workloadList builds the campaign's deterministic workload sequence:
// generated programs first (seed order), then the bounded enumeration.
func (cfg Config) workloadList() []*workloads.Program {
	var out []*workloads.Program
	for i := 0; i < cfg.Seeds; i++ {
		out = append(out, workloads.Generate(workloads.DefaultGenConfig(cfg.SeedStart+int64(i))))
	}
	if cfg.EnumOps > 0 {
		ec := workloads.DefaultEnumConfig()
		ec.MaxOps = cfg.EnumOps
		workloads.Enumerate(ec, func(p *workloads.Program) bool {
			out = append(out, p)
			return true
		})
	}
	return out
}

// Result summarises a campaign.
type Result struct {
	Workloads    int
	Backends     []string
	Cells        int
	CellsSkipped int
	ExplorerRuns int64
	// Violations are deduplicated by signature and minimized, in
	// deterministic (workload, backend, oracle) order.
	Violations []*Violation
	// Duplicates counts suppressed violations that shared a signature with
	// an earlier one.
	Duplicates int
	// Errors records cells whose explorer runs failed outright.
	Errors []string
	// CellsFaulted counts cells abandoned to injected-fault weather (or a
	// quarantined panic) after one retry: coverage loss, not failure, so
	// OK() ignores it.
	CellsFaulted int
	TimedOut     bool
	// Canceled reports that the campaign's context was cancelled before
	// every cell ran (daemon shutdown, job timeout).
	Canceled bool
	Elapsed  time.Duration
}

// OK reports a fully green campaign: every cell ran and no oracle fired.
func (r *Result) OK() bool {
	return len(r.Violations) == 0 && len(r.Errors) == 0 && !r.TimedOut && !r.Canceled
}

// oracleOrder fixes the per-oracle summary line order.
var oracleOrder = []string{OracleLattice, OracleDifferential, OraclePruning, OracleRepresentative, OracleInjected}

// Format renders the campaign summary.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== fuzz campaign: %d workloads × %d backends = %d cells, %d explorer runs, %.1fs ===\n",
		r.Workloads, len(r.Backends), r.Cells, r.ExplorerRuns, r.Elapsed.Seconds())
	byOracle := map[string]int{}
	for _, v := range r.Violations {
		byOracle[v.Oracle]++
	}
	for _, o := range oracleOrder {
		if o == OracleInjected && byOracle[o] == 0 {
			continue
		}
		verdict := "OK"
		if n := byOracle[o]; n > 0 {
			verdict = fmt.Sprintf("%d violation(s)", n)
		}
		fmt.Fprintf(&b, "oracle %-13s %s\n", o+":", verdict)
	}
	if r.Duplicates > 0 {
		fmt.Fprintf(&b, "duplicates suppressed: %d\n", r.Duplicates)
	}
	if r.CellsSkipped > 0 {
		reason := "time budget"
		if r.Canceled {
			reason = "time budget or cancellation"
		}
		fmt.Fprintf(&b, "cells skipped (%s): %d\n", reason, r.CellsSkipped)
	}
	if r.CellsFaulted > 0 {
		fmt.Fprintf(&b, "cells abandoned to injected faults: %d\n", r.CellsFaulted)
	}
	if r.Canceled {
		b.WriteString("campaign cancelled before completion\n")
	}
	for i, v := range r.Violations {
		fmt.Fprintf(&b, "[%d] %s oracle on %s (workload %s)\n    %s\n", i+1, v.Oracle, v.Backend, v.Workload, v.Detail)
		fmt.Fprintf(&b, "    minimized: %d -> %d ops\n", v.MinimizedFrom, v.MinimizedTo)
		for _, op := range v.Body {
			fmt.Fprintf(&b, "      %s\n", op)
		}
		if v.CorpusFile != "" {
			fmt.Fprintf(&b, "    repro: %s\n", v.CorpusFile)
		}
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "error: %s\n", e)
	}
	return b.String()
}

// campaign is the per-run state shared by cell evaluation.
type campaign struct {
	cfg *Config
	// ctx is the campaign's cancellation signal, threaded into every
	// explorer invocation.
	ctx context.Context
	// nruns counts explorer invocations independently of obs, which may be
	// nil (its Counter handles are then no-ops).
	nruns atomic.Int64
	runs  *obs.Counter
	obs   *obs.Run
	// memo shares legal-state sets across every explorer invocation of the
	// campaign: runs of the same cell (same workload, backend and model)
	// enumerate each preserved-set replay once instead of once per strategy.
	memo *paracrash.LegalMemo
}

// explore runs one explorer invocation for the campaign: a fresh file
// system, generated programs only (no I/O library), both models set to the
// oracle's model so POSIX and library runs would judge alike.
func (c *campaign) explore(backend string, w paracrash.Workload, mode paracrash.Mode, model paracrash.Model, workers int) (*paracrash.Report, error) {
	return c.exploreRep(backend, w, mode, model, workers, !c.cfg.DisableRepresentative)
}

// exploreRep is explore with an explicit representative-exploration switch;
// the representative-equivalence oracle uses it for its brute-force
// reference run.
func (c *campaign) exploreRep(backend string, w paracrash.Workload, mode paracrash.Mode, model paracrash.Model, workers int, representative bool) (*paracrash.Report, error) {
	c.nruns.Add(1)
	c.runs.Inc()
	fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
	if err != nil {
		return nil, err
	}
	opts := paracrash.DefaultOptions()
	opts.Mode = mode
	opts.PFSModel = model
	opts.LibModel = model
	opts.Workers = workers
	opts.Obs = c.obs
	opts.Retry = c.cfg.Retry
	opts.DisableRepresentative = !representative
	opts.LegalMemo = c.memo
	if c.cfg.FaultRate > 0 {
		// A fresh plan per invocation: injection decisions are seed+point
		// hashes, so every run of a cell faces identical fault weather with
		// its own healing quota — the differential oracle's serial and
		// parallel runs degrade identically.
		opts.Faults = faultinject.New(faultinject.Config{Seed: c.cfg.FaultSeed, Rate: c.cfg.FaultRate})
	}
	return paracrash.RunContext(c.ctx, fs, nil, w, opts)
}

// errCellPanic marks a cell whose oracle battery panicked; the recover in
// evalCellSafe wraps the panic value so cellFaulted can classify it.
var errCellPanic = errors.New("panic during cell evaluation")

// evalCellSafe is evalCell with panic quarantine: a panic escaping the
// engine's own recovery becomes an error instead of killing the campaign.
func (c *campaign) evalCellSafe(backend string, prog *workloads.Program) (vs []*pending, err error) {
	defer func() {
		if p := recover(); p != nil {
			vs = nil
			err = fmt.Errorf("%w: %v", errCellPanic, p)
		}
	}()
	return c.evalCell(backend, prog)
}

// cellFaulted classifies a cell error as fault weather (injected fault that
// never healed, quarantined panic) rather than a genuine engine failure.
func cellFaulted(err error) bool {
	return faultinject.Is(err) || errors.Is(err, errCellPanic)
}

// runsClean executes the program (preamble + body, untraced) on a fresh
// backend instance — the cheap validity check for minimization candidates
// whose oracle does not itself run the explorer.
func (c *campaign) runsClean(backend string, p *workloads.Program) bool {
	fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
	if err != nil {
		return false
	}
	return p.Preamble(fs) == nil && p.Run(fs) == nil
}

// Run executes the campaign: evaluate every workload × backend cell
// concurrently, then dedupe, minimize and persist violations in a
// deterministic serial pass.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled, cells not
// yet started are skipped, in-flight explorer runs stop at their next
// crash-state boundary, minimization is bypassed, and the result is
// marked Canceled.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	run := cfg.Obs
	stopCampaign := run.Phase(obs.PhaseCampaign)
	defer stopCampaign()

	progs := cfg.workloadList()
	c := &campaign{cfg: &cfg, ctx: ctx, runs: run.Counter("campaign/explorer-runs"), obs: run,
		memo: paracrash.NewLegalMemo()}
	ctrCells := run.Counter("campaign/cells")
	ctrViol := run.Counter("campaign/violations")
	run.Gauge("campaign/workloads").Set(int64(len(progs)))

	type cell struct {
		backend string
		prog    *workloads.Program
	}
	cells := make([]cell, 0, len(progs)*len(cfg.Backends))
	for _, p := range progs {
		for _, b := range cfg.Backends {
			cells = append(cells, cell{b, p})
		}
	}
	run.Gauge("campaign/cells-total").Set(int64(len(cells)))

	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = start.Add(cfg.TimeBudget)
	}

	var (
		mu          sync.Mutex
		wg          sync.WaitGroup
		skipped     int
		cancelSkips int
		faulted     int
		found       = map[int][]*pending{}
		errs        = map[int]string{}
	)
	ctrFaulted := run.Counter("campaign/cells-faulted")
	ctrCellRetries := run.Counter("campaign/cell-retries")
	sem := make(chan struct{}, cfg.Workers)
	for i, cl := range cells {
		if ctx.Err() != nil {
			cancelSkips++
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			skipped++
			continue
		}
		i, cl := i, cl
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			vs, err := c.evalCellSafe(cl.backend, cl.prog)
			if err != nil && cellFaulted(err) && ctx.Err() == nil {
				// One retry for fault weather; deterministic injection means
				// this mostly matters for escaped panics and genuinely
				// transient failures.
				ctrCellRetries.Inc()
				vs, err = c.evalCellSafe(cl.backend, cl.prog)
			}
			ctrCells.Inc()
			mu.Lock()
			defer mu.Unlock()
			// A cell aborted by campaign cancellation is not an engine
			// failure; it is accounted under Canceled instead.
			if err != nil && ctx.Err() == nil {
				if cellFaulted(err) {
					faulted++
					ctrFaulted.Inc()
				} else {
					errs[i] = fmt.Sprintf("%s on %s: %v", cl.prog.Name(), cl.backend, err)
				}
			}
			if len(vs) > 0 {
				found[i] = vs
			}
		}()
	}
	wg.Wait()

	res := &Result{
		Workloads:    len(progs),
		Backends:     cfg.Backends,
		Cells:        len(cells),
		CellsSkipped: skipped + cancelSkips,
		CellsFaulted: faulted,
		TimedOut:     skipped > 0,
		Canceled:     ctx.Err() != nil,
	}
	var errIdx []int
	for i := range errs {
		errIdx = append(errIdx, i)
	}
	sort.Ints(errIdx)
	for _, i := range errIdx {
		res.Errors = append(res.Errors, errs[i])
	}

	// Deterministic dedup → minimize → corpus pass, in cell order.
	seen := map[string]bool{}
	for i := range cells {
		for _, p := range found[i] {
			if seen[p.v.Signature] {
				res.Duplicates++
				continue
			}
			seen[p.v.Signature] = true
			v := p.v
			v.Preamble = append([]workloads.Op(nil), cells[i].prog.PreambleOps()...)
			body := cells[i].prog.Body()
			v.MinimizedFrom = len(body)
			// Minimization re-runs the explorer many times; on a cancelled
			// campaign the un-minimized body is reported as-is.
			if p.pred != nil && ctx.Err() == nil {
				stopMin := run.Phase(obs.PhaseMinimize)
				body = Minimize(body, p.pred, cfg.MinimizeTests)
				stopMin()
			}
			v.Body = append([]workloads.Op(nil), body...)
			v.MinimizedTo = len(v.Body)
			ctrViol.Inc()
			if cfg.CorpusDir != "" {
				path, err := WriteRepro(cfg.CorpusDir, &Repro{
					Version:   ReproVersion,
					Oracle:    v.Oracle,
					Backend:   v.Backend,
					Workload:  v.Workload,
					Signature: v.Signature,
					Detail:    v.Detail,
					Script:    workloads.NewProgram(v.Workload, v.Preamble, v.Body).Script(),
					Preamble:  v.Preamble,
					Body:      v.Body,
				})
				if err != nil {
					res.Errors = append(res.Errors, err.Error())
				} else {
					v.CorpusFile = path
				}
			}
			res.Violations = append(res.Violations, v)
		}
	}
	res.ExplorerRuns = c.nruns.Load()
	res.Elapsed = time.Since(start)
	return res, nil
}
