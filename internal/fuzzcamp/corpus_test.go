package fuzzcamp

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"paracrash/internal/workloads"
)

func sampleRepro() *Repro {
	pre := []workloads.Op{
		{Kind: workloads.OpCreat, Path: "/f0"},
		{Kind: workloads.OpPwrite, Path: "/f0", Data: []byte("seed")},
		{Kind: workloads.OpClose, Path: "/f0"},
	}
	body := []workloads.Op{
		{Kind: workloads.OpAppend, Path: "/f0", Data: []byte("tail")},
		{Kind: workloads.OpFsync, Path: "/f0"},
	}
	return &Repro{
		Version:   ReproVersion,
		Oracle:    OracleLattice,
		Backend:   "beegfs",
		Workload:  "gen-7",
		Signature: "lattice|beegfs|causal⊆strict|pfs:deadbeef",
		Detail:    "state inconsistent under causal but not under strict",
		Script:    workloads.NewProgram("gen-7", pre, body).Script(),
		Preamble:  pre,
		Body:      body,
	}
}

func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleRepro()
	path, err := WriteRepro(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the repro:\n got %+v\nwant %+v", got, want)
	}
	p := got.Program()
	if p.Name() != "gen-7" || len(p.Body()) != 2 || len(p.PreambleOps()) != 3 {
		t.Fatalf("rebuilt program wrong: name=%q body=%d preamble=%d", p.Name(), len(p.Body()), len(p.PreambleOps()))
	}

	// Rewriting the same signature must overwrite, not duplicate.
	if _, err := WriteRepro(dir, want); err != nil {
		t.Fatal(err)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 1 {
		t.Fatalf("corpus has %d entries, want 1", len(corpus))
	}
}

func TestLoadReproRejectsWrongVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repro-bad.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"body":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepro(path); err == nil {
		t.Fatal("LoadRepro accepted an unknown schema version")
	}
}
