package fuzzcamp

import (
	"strings"

	"paracrash/internal/workloads"
)

// Minimize shrinks a violating op sequence with the ddmin delta-debugging
// algorithm: it returns a subsequence of body for which pred still holds and
// which is 1-minimal with respect to the chunks tried (removing any single
// remaining op no longer reproduces the violation once granularity reaches
// one op per chunk).
//
// pred must be deterministic and must return false for op sequences that are
// invalid (fail to run): the campaign's predicates run the candidate through
// the explorer, so a shrink that removes a creat its pwrite depends on simply
// fails the run and is rejected. Results are memoised, so re-testing a chunk
// the search already visited costs nothing. maxTests bounds the number of
// *distinct* predicate evaluations (<= 0 means unlimited); when the budget
// runs out the best sequence found so far is returned.
func Minimize(body []workloads.Op, pred func([]workloads.Op) bool, maxTests int) []workloads.Op {
	cur := append([]workloads.Op(nil), body...)
	if len(cur) <= 1 {
		return cur
	}
	cache := map[string]bool{}
	tests := 0
	test := func(ops []workloads.Op) bool {
		k := opsKey(ops)
		if v, ok := cache[k]; ok {
			return v
		}
		if maxTests > 0 && tests >= maxTests {
			return false
		}
		tests++
		v := pred(ops)
		cache[k] = v
		return v
	}

	n := 2
	for len(cur) >= 2 {
		parts := splitOps(cur, n)
		reduced := false
		// Reduce to subset: one chunk alone still violates.
		for _, p := range parts {
			if test(p) {
				cur, n, reduced = p, 2, true
				break
			}
		}
		if !reduced {
			// Reduce to complement: dropping one chunk still violates.
			for i := range parts {
				c := complementOps(parts, i)
				if test(c) {
					cur, reduced = c, true
					if n > 2 {
						n--
					}
					break
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break // 1-minimal at op granularity
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
		if maxTests > 0 && tests >= maxTests {
			break
		}
	}
	return cur
}

// splitOps partitions ops into n non-empty contiguous chunks (n <= len).
func splitOps(ops []workloads.Op, n int) [][]workloads.Op {
	out := make([][]workloads.Op, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		end := start + (len(ops)-start)/(n-i)
		if end > start {
			out = append(out, ops[start:end])
		}
		start = end
	}
	return out
}

// complementOps concatenates every chunk except parts[skip].
func complementOps(parts [][]workloads.Op, skip int) []workloads.Op {
	var out []workloads.Op
	for i, p := range parts {
		if i != skip {
			out = append(out, p...)
		}
	}
	return out
}

// opsKey canonicalises an op sequence for memoisation.
func opsKey(ops []workloads.Op) string {
	var b strings.Builder
	for _, op := range ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}
