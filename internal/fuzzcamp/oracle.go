package fuzzcamp

import (
	"fmt"
	"sort"
	"strings"

	"paracrash/internal/exps"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// Oracle names, in evaluation order.
const (
	// OracleLattice checks model-lattice monotonicity: legal(strict) ⊆
	// legal(causal) ⊆ legal(commit) and legal(strict) ⊆ legal(baseline), so
	// the inconsistent-state key sets must shrink in the opposite direction
	// (causal ⊆ strict, commit ⊆ causal, baseline ⊆ strict).
	OracleLattice = "lattice"
	// OracleDifferential checks the parallel engine's determinism contract:
	// Workers=1 and Workers=N brute explorations must produce reports that
	// are byte-identical modulo wall time.
	OracleDifferential = "differential"
	// OraclePruning checks pruning soundness at the bug-cause level: pruned
	// and optimized explorations must not report causes brute force does not
	// (no false positives) and must not be vacuously silent when brute force
	// finds bugs. Raw signature equality is deliberately NOT required — the
	// reported operation pair is a per-group representative that shifts with
	// the set of states a strategy classifies, so only the aggregation group
	// (Bug.CauseKey: kind, layer and culprit class, or the in-flight parent
	// op) is comparable across strategies.
	OraclePruning = "pruning"
	// OracleRepresentative checks representative-exploration equivalence:
	// the default run (one reconstruction per equivalence class, verdicts
	// attributed to members) must produce a report whose verdict content —
	// states, skips, bugs, everything except the effort stats — is
	// byte-identical to a run that reconstructs every crash state
	// (exps.ReportKernel). Skipped when Config.DisableRepresentative is set,
	// which would make the comparison vacuous.
	OracleRepresentative = "representative"
	// OracleInjected is the test-only injection hook (Config.Inject).
	OracleInjected = "injected"
)

// Violation is one deduplicated oracle failure, after minimization.
type Violation struct {
	Oracle   string
	Backend  string
	Workload string
	// Signature is the dedup identity (oracle, backend and failure cause).
	Signature string
	Detail    string
	// Body is the minimized reproducer body; Preamble is carried unchanged.
	Preamble []workloads.Op
	Body     []workloads.Op
	// MinimizedFrom/MinimizedTo record the body length before and after
	// delta debugging.
	MinimizedFrom int
	MinimizedTo   int
	// CorpusFile is the written repro path ("" when no corpus dir was set
	// or minimization could not preserve the failure).
	CorpusFile string
}

// pending is a detected violation awaiting the deterministic
// dedup/minimize/corpus pass. pred re-judges a candidate body against the
// specific failing oracle (nil when the violation is not minimizable).
type pending struct {
	v    *Violation
	pred func(body []workloads.Op) bool
}

// latticeEdge is one inclusion to check: violations(sub) ⊆ violations(super).
type latticeEdge struct {
	sub, super paracrash.Model
}

func latticeEdges() []latticeEdge {
	return []latticeEdge{
		{paracrash.ModelCausal, paracrash.ModelStrict},
		{paracrash.ModelCommit, paracrash.ModelCausal},
		{paracrash.ModelBaseline, paracrash.ModelStrict},
	}
}

// stateKeys collects the report's inconsistent-state identity keys.
func stateKeys(rep *paracrash.Report) map[string]bool {
	out := make(map[string]bool, len(rep.States))
	for _, st := range rep.States {
		out[st.Key] = true
	}
	return out
}

// causeKeys collects the server-stripped bug cause classes of a report.
func causeKeys(rep *paracrash.Report) map[string]bool {
	out := make(map[string]bool, len(rep.Bugs))
	for _, b := range rep.Bugs {
		out[b.CauseKey()] = true
	}
	return out
}

// missingFrom returns the keys of sub absent from super, sorted.
func missingFrom(sub, super map[string]bool) []string {
	var out []string
	for k := range sub {
		if !super[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// firstDiffLine locates the first line where two report fingerprints
// diverge, for the differential oracles' detail messages. The reference
// run's fingerprint goes first ("want"), the run under test second ("got").
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		av, bv := "", ""
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if av != bv {
			return fmt.Sprintf("line %d: want %q got %q", i+1, av, bv)
		}
	}
	return "fingerprints differ"
}

// evalCell runs the full oracle battery for one workload × backend cell:
// four serial brute runs (one per consistency model), one parallel brute
// run, the two pruned-strategy runs and the brute-force-per-state
// reference run of the representative oracle — eight explorer invocations.
func (c *campaign) evalCell(backend string, prog *workloads.Program) ([]*pending, error) {
	models := []paracrash.Model{
		paracrash.ModelStrict, paracrash.ModelCommit,
		paracrash.ModelCausal, paracrash.ModelBaseline,
	}
	brute := map[paracrash.Model]*paracrash.Report{}
	for _, m := range models {
		rep, err := c.explore(backend, prog, paracrash.ModeBrute, m, 1)
		if err != nil {
			return nil, fmt.Errorf("brute/%s: %w", m, err)
		}
		brute[m] = rep
	}

	var out []*pending

	// Oracle 1: model-lattice monotonicity over state keys.
	for _, e := range latticeEdges() {
		e := e
		missing := missingFrom(stateKeys(brute[e.sub]), stateKeys(brute[e.super]))
		if len(missing) == 0 {
			continue
		}
		out = append(out, &pending{
			v: &Violation{
				Oracle: OracleLattice, Backend: backend, Workload: prog.Name(),
				Signature: fmt.Sprintf("%s|%s|%s⊆%s|%s", OracleLattice, backend, e.sub, e.super, missing[0]),
				Detail: fmt.Sprintf("state(s) inconsistent under %s but not under %s: %s",
					e.sub, e.super, strings.Join(capList(missing, 3), ", ")),
			},
			pred: func(body []workloads.Op) bool {
				p := workloads.NewProgram(prog.Name(), prog.PreambleOps(), body)
				sub, err := c.explore(backend, p, paracrash.ModeBrute, e.sub, 1)
				if err != nil {
					return false
				}
				super, err := c.explore(backend, p, paracrash.ModeBrute, e.super, 1)
				if err != nil {
					return false
				}
				return len(missingFrom(stateKeys(sub), stateKeys(super))) > 0
			},
		})
	}

	// Oracle 2: serial-vs-parallel differential on the causal brute run.
	serialFP := exps.ReportFingerprint(brute[paracrash.ModelCausal])
	par, err := c.explore(backend, prog, paracrash.ModeBrute, paracrash.ModelCausal, c.cfg.DiffWorkers)
	if err != nil {
		return nil, fmt.Errorf("parallel brute/causal: %w", err)
	}
	if parFP := exps.ReportFingerprint(par); parFP != serialFP {
		diff := firstDiffLine(serialFP, parFP)
		out = append(out, &pending{
			v: &Violation{
				Oracle: OracleDifferential, Backend: backend, Workload: prog.Name(),
				Signature: fmt.Sprintf("%s|%s|%s", OracleDifferential, backend, diff),
				Detail: fmt.Sprintf("Workers=1 and Workers=%d brute reports diverge: %s",
					c.cfg.DiffWorkers, diff),
			},
			pred: func(body []workloads.Op) bool {
				p := workloads.NewProgram(prog.Name(), prog.PreambleOps(), body)
				s, err := c.explore(backend, p, paracrash.ModeBrute, paracrash.ModelCausal, 1)
				if err != nil {
					return false
				}
				n, err := c.explore(backend, p, paracrash.ModeBrute, paracrash.ModelCausal, c.cfg.DiffWorkers)
				if err != nil {
					return false
				}
				return exps.ReportFingerprint(s) != exps.ReportFingerprint(n)
			},
		})
	}

	// Oracle 3: pruning soundness against the causal brute run.
	bruteCauses := causeKeys(brute[paracrash.ModelCausal])
	for _, mode := range []paracrash.Mode{paracrash.ModePruning, paracrash.ModeOptimized} {
		mode := mode
		rep, err := c.explore(backend, prog, mode, paracrash.ModelCausal, 1)
		if err != nil {
			return nil, fmt.Errorf("%s/causal: %w", mode, err)
		}
		pred := func(body []workloads.Op) bool {
			p := workloads.NewProgram(prog.Name(), prog.PreambleOps(), body)
			b, err := c.explore(backend, p, paracrash.ModeBrute, paracrash.ModelCausal, 1)
			if err != nil {
				return false
			}
			pr, err := c.explore(backend, p, mode, paracrash.ModelCausal, 1)
			if err != nil {
				return false
			}
			return len(missingFrom(causeKeys(pr), causeKeys(b))) > 0 ||
				(len(b.Bugs) > 0 && len(pr.Bugs) == 0)
		}
		if stray := missingFrom(causeKeys(rep), bruteCauses); len(stray) > 0 {
			out = append(out, &pending{
				v: &Violation{
					Oracle: OraclePruning, Backend: backend, Workload: prog.Name(),
					Signature: fmt.Sprintf("%s|%s|%s|stray|%s", OraclePruning, backend, mode, stray[0]),
					Detail: fmt.Sprintf("%s reports cause(s) brute force does not: %s",
						mode, strings.Join(capList(stray, 3), ", ")),
				},
				pred: pred,
			})
		} else if len(brute[paracrash.ModelCausal].Bugs) > 0 && len(rep.Bugs) == 0 {
			out = append(out, &pending{
				v: &Violation{
					Oracle: OraclePruning, Backend: backend, Workload: prog.Name(),
					Signature: fmt.Sprintf("%s|%s|%s|vacuous", OraclePruning, backend, mode),
					Detail: fmt.Sprintf("brute force finds %d cause group(s) but %s finds none",
						len(bruteCauses), mode),
				},
				pred: pred,
			})
		}
	}

	// Oracle 4: representative-exploration equivalence on the causal brute
	// run. brute[causal] already ran with the campaign's representative
	// setting (the default: on); the reference run forces every state to be
	// reconstructed, and the two reports must agree on everything except
	// effort stats.
	if !c.cfg.DisableRepresentative {
		full, err := c.exploreRep(backend, prog, paracrash.ModeBrute, paracrash.ModelCausal, 1, false)
		if err != nil {
			return nil, fmt.Errorf("brute-force reference/causal: %w", err)
		}
		repKernel, fullKernel := exps.ReportKernel(brute[paracrash.ModelCausal]), exps.ReportKernel(full)
		if repKernel != fullKernel {
			diff := firstDiffLine(fullKernel, repKernel)
			out = append(out, &pending{
				v: &Violation{
					Oracle: OracleRepresentative, Backend: backend, Workload: prog.Name(),
					Signature: fmt.Sprintf("%s|%s|%s", OracleRepresentative, backend, diff),
					Detail: fmt.Sprintf("representative report diverges from brute-force-per-state report: %s; states missing from representative: %s",
						diff, strings.Join(capList(missingFrom(stateKeys(full), stateKeys(brute[paracrash.ModelCausal])), 3), ", ")),
				},
				pred: func(body []workloads.Op) bool {
					p := workloads.NewProgram(prog.Name(), prog.PreambleOps(), body)
					r, err := c.exploreRep(backend, p, paracrash.ModeBrute, paracrash.ModelCausal, 1, true)
					if err != nil {
						return false
					}
					f, err := c.exploreRep(backend, p, paracrash.ModeBrute, paracrash.ModelCausal, 1, false)
					if err != nil {
						return false
					}
					return exps.ReportKernel(r) != exps.ReportKernel(f)
				},
			})
		}
	}

	// Oracle 5: the injection hook (tests only).
	if c.cfg.Inject != nil {
		if detail := c.cfg.Inject(backend, prog); detail != "" {
			out = append(out, &pending{
				v: &Violation{
					Oracle: OracleInjected, Backend: backend, Workload: prog.Name(),
					Signature: fmt.Sprintf("%s|%s|%s", OracleInjected, backend, detail),
					Detail:    detail,
				},
				pred: func(body []workloads.Op) bool {
					p := workloads.NewProgram(prog.Name(), prog.PreambleOps(), body)
					return c.runsClean(backend, p) && c.cfg.Inject(backend, p) != ""
				},
			})
		}
	}
	return out, nil
}

// capList truncates a string list for detail messages.
func capList(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return append(append([]string(nil), s[:n]...), fmt.Sprintf("… (%d more)", len(s)-n))
}
