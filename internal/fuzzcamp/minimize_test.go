package fuzzcamp

import (
	"testing"

	"paracrash/internal/workloads"
)

// fakeBody builds a synthetic op list whose paths name the ops.
func fakeBody(names ...string) []workloads.Op {
	out := make([]workloads.Op, len(names))
	for i, n := range names {
		out[i] = workloads.Op{Kind: workloads.OpCreat, Path: "/" + n}
	}
	return out
}

func hasPaths(ops []workloads.Op, want ...string) bool {
	got := map[string]bool{}
	for _, op := range ops {
		got[op.Path] = true
	}
	for _, w := range want {
		if !got["/"+w] {
			return false
		}
	}
	return true
}

func TestMinimizeFindsTwoOpCore(t *testing.T) {
	body := fakeBody("x0", "a", "x1", "x2", "b", "x3", "x4", "x5")
	calls := 0
	pred := func(ops []workloads.Op) bool {
		calls++
		return hasPaths(ops, "a", "b")
	}
	min := Minimize(body, pred, 0)
	if len(min) != 2 || !hasPaths(min, "a", "b") {
		t.Fatalf("Minimize kept %v, want exactly /a and /b", min)
	}
	if calls == 0 {
		t.Fatal("predicate never evaluated")
	}
	// 1-minimality: dropping any remaining op must break the predicate.
	for i := range min {
		rest := append(append([]workloads.Op(nil), min[:i]...), min[i+1:]...)
		if pred(rest) {
			t.Fatalf("result not 1-minimal: still violates without %v", min[i])
		}
	}
}

func TestMinimizeKeepsSingleton(t *testing.T) {
	body := fakeBody("only")
	min := Minimize(body, func(ops []workloads.Op) bool { return len(ops) > 0 }, 0)
	if len(min) != 1 || min[0].Path != "/only" {
		t.Fatalf("singleton body changed: %v", min)
	}
}

func TestMinimizeRespectsTestBudget(t *testing.T) {
	body := fakeBody("a", "b", "c", "d", "e", "f", "g", "h")
	calls := 0
	pred := func(ops []workloads.Op) bool {
		calls++
		return hasPaths(ops, "a", "h")
	}
	min := Minimize(body, pred, 3)
	if calls > 3 {
		t.Fatalf("budget of 3 distinct tests exceeded: %d calls", calls)
	}
	// Whatever was returned must still violate (the budget never trades
	// away reproduction).
	if !hasPaths(min, "a", "h") {
		t.Fatalf("budget-limited result no longer violates: %v", min)
	}
}

func TestMinimizeMemoisesRepeatedCandidates(t *testing.T) {
	body := fakeBody("a", "b", "c", "d")
	seen := map[string]int{}
	pred := func(ops []workloads.Op) bool {
		seen[opsKey(ops)]++
		return hasPaths(ops, "a")
	}
	Minimize(body, pred, 0)
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("candidate evaluated %d times: %q", n, k)
		}
	}
}
