package fuzzcamp

import (
	"os"
	"strings"
	"testing"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/obs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// TestCampaignSmokeGreen runs a tiny campaign (2 seeds + the length-1
// enumeration on the two cheapest backends) and expects every oracle to pass
// with the exact run accounting: eight explorer invocations per cell.
func TestCampaignSmokeGreen(t *testing.T) {
	run := obs.NewRun()
	res, err := Run(Config{
		Backends: []string{"ext4", "glusterfs"},
		Seeds:    2,
		EnumOps:  1,
		Obs:      run,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("campaign not green:\n%s", res.Format())
	}
	if res.Cells != res.Workloads*2 {
		t.Fatalf("cells = %d, want workloads(%d) × 2 backends", res.Cells, res.Workloads)
	}
	if want := int64(res.Cells * 8); res.ExplorerRuns != want {
		t.Fatalf("explorer runs = %d, want %d (8 per cell)", res.ExplorerRuns, want)
	}
	sum := run.Summary()
	if sum.Counters["campaign/cells"] != int64(res.Cells) {
		t.Fatalf("obs cells counter = %d, want %d", sum.Counters["campaign/cells"], res.Cells)
	}
	if sum.Counters["campaign/explorer-runs"] != res.ExplorerRuns {
		t.Fatalf("obs run counter = %d, want %d", sum.Counters["campaign/explorer-runs"], res.ExplorerRuns)
	}
}

// TestCampaignAllBackendsGreen is the cross-backend acceptance check: every
// oracle green on all six file systems.
func TestCampaignAllBackendsGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend campaign in -short mode")
	}
	res, err := Run(Config{Seeds: 4, EnumOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("campaign not green:\n%s", res.Format())
	}
	if len(res.Backends) != 6 {
		t.Fatalf("default backends = %v, want all six", res.Backends)
	}
}

// TestCampaignEnumerationInclusion pins the workload list composition: with
// Seeds=0 the campaign tests exactly the bounded enumeration.
func TestCampaignEnumerationInclusion(t *testing.T) {
	ec := workloads.DefaultEnumConfig()
	ec.MaxOps = 2
	wantEnum := workloads.Enumerate(ec, func(*workloads.Program) bool { return true })

	cfg := Config{Seeds: 0, EnumOps: 2, Backends: []string{"ext4"}}.withDefaults()
	progs := cfg.workloadList()
	if len(progs) != wantEnum {
		t.Fatalf("workload list has %d programs, want %d enumerated", len(progs), wantEnum)
	}
	// Seeds and enumeration compose: generated programs come first.
	cfg = Config{Seeds: 3, EnumOps: 2, Backends: []string{"ext4"}}.withDefaults()
	progs = cfg.workloadList()
	if len(progs) != 3+wantEnum {
		t.Fatalf("workload list has %d programs, want %d", len(progs), 3+wantEnum)
	}
	if !strings.HasPrefix(progs[0].Name(), "gen-") || !strings.HasPrefix(progs[3].Name(), "enum-") {
		t.Fatalf("workload order wrong: %s, %s", progs[0].Name(), progs[3].Name())
	}
}

// fsyncSeed finds a generator seed whose body contains an fsync — the
// injection tests key on it so minimization has a crisp 1–2 op core.
func fsyncSeed(t *testing.T) int64 {
	t.Helper()
	for seed := int64(0); seed < 64; seed++ {
		p := workloads.Generate(workloads.DefaultGenConfig(seed))
		for _, op := range p.Body() {
			if op.Kind == workloads.OpFsync {
				return seed
			}
		}
	}
	t.Fatal("no seed in 0..63 generates an fsync op")
	return 0
}

func hasFsync(p *workloads.Program) bool {
	for _, op := range p.Body() {
		if op.Kind == workloads.OpFsync {
			return true
		}
	}
	return false
}

// TestCampaignInjectedViolationMinimized drives the whole failure pipeline
// through the test-only injection hook: detection, delta-debugging
// minimization down to the op core, and a replayable corpus file.
func TestCampaignInjectedViolationMinimized(t *testing.T) {
	seed := fsyncSeed(t)
	dir := t.TempDir()
	res, err := Run(Config{
		Backends:  []string{"ext4"},
		SeedStart: seed,
		Seeds:     1,
		CorpusDir: dir,
		Inject: func(backend string, p *workloads.Program) string {
			if hasFsync(p) {
				return "injected: body contains fsync"
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1:\n%s", len(res.Violations), res.Format())
	}
	v := res.Violations[0]
	if v.Oracle != OracleInjected {
		t.Fatalf("oracle = %q, want injected", v.Oracle)
	}
	if v.MinimizedTo > 6 {
		t.Fatalf("minimized reproducer has %d ops, want <= 6:\n%s", v.MinimizedTo, res.Format())
	}
	if v.MinimizedTo >= v.MinimizedFrom {
		t.Fatalf("minimization did not shrink: %d -> %d ops", v.MinimizedFrom, v.MinimizedTo)
	}
	if v.CorpusFile == "" {
		t.Fatal("no corpus file written")
	}
	if _, err := os.Stat(v.CorpusFile); err != nil {
		t.Fatal(err)
	}

	// The corpus entry must replay: same violation, clean execution.
	rep, err := LoadRepro(v.CorpusFile)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Program()
	if !hasFsync(p) {
		t.Fatalf("minimized reproducer lost the violation:\n%s", p.Script())
	}
	fs, err := exps.NewFS("ext4", exps.ConfigFor("ext4"), trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Preamble(fs); err != nil {
		t.Fatalf("reproducer preamble does not replay: %v", err)
	}
	if err := p.Run(fs); err != nil {
		t.Fatalf("reproducer body does not replay: %v", err)
	}
}

// TestCampaignDedupesSignatures checks that violations sharing a signature
// collapse to one corpus entry.
func TestCampaignDedupesSignatures(t *testing.T) {
	res, err := Run(Config{
		Backends: []string{"ext4"},
		Seeds:    2,
		Inject: func(backend string, p *workloads.Program) string {
			return "always-on violation"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Duplicates != 1 {
		t.Fatalf("violations=%d duplicates=%d, want 1 and 1:\n%s",
			len(res.Violations), res.Duplicates, res.Format())
	}
}

// TestCampaignTimeBudget checks that an expired budget skips cells instead
// of running them, and is reported.
func TestCampaignTimeBudget(t *testing.T) {
	res, err := Run(Config{
		Backends:   []string{"ext4"},
		Seeds:      2,
		TimeBudget: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.CellsSkipped != res.Cells {
		t.Fatalf("timed-out campaign ran cells: skipped=%d cells=%d timedOut=%v",
			res.CellsSkipped, res.Cells, res.TimedOut)
	}
	if res.ExplorerRuns != 0 {
		t.Fatalf("explorer ran %d times after budget expiry", res.ExplorerRuns)
	}
	if res.OK() {
		t.Fatal("timed-out campaign must not report OK")
	}
}
