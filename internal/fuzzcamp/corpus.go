// Package fuzzcamp is the crash-consistency fuzzing campaign engine: it
// enumerates and generates bounded POSIX workloads, runs each through the
// ParaCrash explorer across every PFS backend and consistency model, and
// judges the results with metamorphic oracles — properties that must relate
// *pairs* of runs even though no single run has a ground-truth answer:
//
//  1. model-lattice monotonicity: the consistency models order by legal-set
//     inclusion, so the inconsistent crash states found under a weaker model
//     must be a subset of those found under a stronger one;
//  2. serial-vs-parallel differential: a Workers=1 and a Workers=N brute
//     exploration must produce byte-identical reports (the parallel engine's
//     determinism contract);
//  3. pruning soundness: every bug cause reported by the pruning/optimized
//     strategies must also be reported by brute force, and pruning must not
//     go vacuously silent on a workload where brute force finds bugs.
//
// An oracle failure triggers delta-debugging minimization of the workload
// (minimize.go) and the minimal reproducer is written to a replayable corpus
// file (this file).
package fuzzcamp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"paracrash/internal/workloads"
)

// ReproVersion is the corpus file schema version.
const ReproVersion = 1

// Repro is one corpus entry: a minimized workload reproducing an oracle
// violation, with enough metadata to rerun the exact failing configuration.
type Repro struct {
	Version  int    `json:"version"`
	Oracle   string `json:"oracle"`
	Backend  string `json:"backend"`
	Workload string `json:"workload"`
	// Signature is the campaign's dedup identity for the violation.
	Signature string `json:"signature"`
	Detail    string `json:"detail"`
	// Script is the human-readable rendering of Body (informational; Body
	// is authoritative for replay).
	Script   string         `json:"script"`
	Preamble []workloads.Op `json:"preamble,omitempty"`
	Body     []workloads.Op `json:"body"`
}

// Program rebuilds the replayable workload from the corpus entry.
func (r *Repro) Program() *workloads.Program {
	return workloads.NewProgram(r.Workload, r.Preamble, r.Body)
}

// reproFileName derives a stable file name from the violation signature, so
// rerunning a campaign overwrites rather than duplicates corpus entries.
func reproFileName(sig string) string {
	sum := sha256.Sum256([]byte(sig))
	return "repro-" + hex.EncodeToString(sum[:6]) + ".json"
}

// WriteRepro writes the entry into dir (created if needed) and returns the
// file path.
func WriteRepro(dir string, r *Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("fuzzcamp: corpus dir: %w", err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("fuzzcamp: encode repro: %w", err)
	}
	path := filepath.Join(dir, reproFileName(r.Signature))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("fuzzcamp: write repro: %w", err)
	}
	return path, nil
}

// LoadRepro reads one corpus entry.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzzcamp: read repro: %w", err)
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("fuzzcamp: parse repro %s: %w", path, err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("fuzzcamp: repro %s has version %d, want %d", path, r.Version, ReproVersion)
	}
	return &r, nil
}

// LoadCorpus reads every repro-*.json entry in dir, sorted by file name.
func LoadCorpus(dir string) ([]*Repro, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "repro-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Repro, 0, len(paths))
	for _, p := range paths {
		r, err := LoadRepro(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
