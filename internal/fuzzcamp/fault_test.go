package fuzzcamp

import (
	"testing"
	"time"

	core "paracrash/internal/paracrash"
)

// TestCampaignHealsInjectedFaults: with the default retry budget, bounded
// injected faults (one per point) heal inside the explorer, so the campaign
// stays green with no cells abandoned — fault transparency end to end.
func TestCampaignHealsInjectedFaults(t *testing.T) {
	res, err := Run(Config{
		Backends:  []string{"ext4", "glusterfs"},
		Seeds:     2,
		EnumOps:   1,
		FaultSeed: 33,
		FaultRate: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("faulted campaign not green:\n%s", res.Format())
	}
	if res.CellsFaulted != 0 {
		t.Fatalf("bounded faults abandoned %d cells, want 0 (retries heal them)", res.CellsFaulted)
	}
}

// TestCampaignQuarantinesHardFaultedCells: with the retry budget floored at
// one attempt and a rate-1 fault plane, every cell's golden replay faults
// and cannot heal; the campaign must count the cells as abandoned and still
// finish green instead of erroring out.
func TestCampaignQuarantinesHardFaultedCells(t *testing.T) {
	res, err := Run(Config{
		Backends:  []string{"ext4"},
		Seeds:     2,
		EnumOps:   0,
		FaultSeed: 1,
		FaultRate: 1,
		Retry:     core.RetryPolicy{MaxAttempts: 1, Backoff: time.Microsecond},
	})
	if err != nil {
		t.Fatalf("hard-faulted campaign aborted: %v", err)
	}
	if res.CellsFaulted == 0 {
		t.Fatalf("rate-1 faults with a single-attempt budget abandoned no cells:\n%s", res.Format())
	}
	if !res.OK() {
		t.Fatalf("abandoned cells flipped the campaign red:\n%s", res.Format())
	}
	if got := res.Format(); !containsFaultLine(got) {
		t.Fatalf("Format() does not report abandoned cells:\n%s", got)
	}
}

func containsFaultLine(s string) bool {
	for i := 0; i+len("abandoned") <= len(s); i++ {
		if s[i:i+len("abandoned")] == "abandoned" {
			return true
		}
	}
	return false
}
