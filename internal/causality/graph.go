// Package causality builds the multi-layer, multi-process causality graph
// over traced operations and derives from it everything the crash emulator
// needs: the happens-before partial order, consistent cuts (order ideals),
// and the persists-before relation of the paper's Algorithm 2.
//
// Concurrency: Graph and PersistOrder are fully precomputed by Build and
// NewPersistOrder respectively and never mutated afterwards, so all their
// query methods (HB, Ideals, DownwardClosed, SyncFeasible, PersistsBefore,
// DependsOn, ...) are safe to call from multiple goroutines concurrently.
// The parallel exploration engine relies on this: shard workers share one
// Graph and one PersistOrder without locking.
package causality

import (
	"fmt"

	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// Graph is the happens-before DAG over a trace. Nodes are ops (indexed by
// position in Ops); the relation is the transitive closure of
//
//   - program order within each process,
//   - caller → callee edges across layers,
//   - send → receive edges for matched communications.
type Graph struct {
	// Ops holds every node. Indices into this slice are the node IDs used
	// throughout the package.
	Ops []*trace.Op

	byID map[int]int // trace op ID -> node index
	succ [][]int     // direct edges
	hb   []Bitset    // hb[i].Get(j) ⇔ i strictly happens-before j
}

// Build constructs the causality graph over ops. The ops must carry
// consistent Parent/MsgID links; unknown parents are ignored.
func Build(ops []*trace.Op) *Graph {
	g := &Graph{
		Ops:  ops,
		byID: make(map[int]int, len(ops)),
		succ: make([][]int, len(ops)),
	}
	for i, o := range ops {
		g.byID[o.ID] = i
	}

	addEdge := func(from, to int) {
		if from == to {
			return
		}
		g.succ[from] = append(g.succ[from], to)
	}

	// Program order within each process.
	lastByProc := map[string]int{}
	for i, o := range ops {
		if prev, ok := lastByProc[o.Proc]; ok {
			addEdge(prev, i)
		}
		lastByProc[o.Proc] = i
	}

	// Caller-callee edges.
	for i, o := range ops {
		if o.Parent >= 0 {
			if pi, ok := g.byID[o.Parent]; ok {
				addEdge(pi, i)
			}
		}
	}

	// Communication edges: send → recv.
	sends := map[int]int{}
	recvs := map[int]int{}
	for i, o := range ops {
		if !o.IsComm() {
			continue
		}
		if o.IsSend {
			sends[o.MsgID] = i
		} else {
			recvs[o.MsgID] = i
		}
	}
	for msg, si := range sends {
		if ri, ok := recvs[msg]; ok {
			addEdge(si, ri)
		}
	}

	g.closure()
	return g
}

// closure computes the transitive closure with a reverse-topological DP.
// The graph is a DAG by construction (all edge sources were recorded before
// their targets except possibly comm edges, so we verify with Kahn).
func (g *Graph) closure() {
	n := len(g.Ops)
	g.hb = make([]Bitset, n)
	for i := range g.hb {
		g.hb[i] = NewBitset(n)
	}
	// Topological order via Kahn's algorithm.
	indeg := make([]int, n)
	for _, outs := range g.succ {
		for _, t := range outs {
			indeg[t]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, t := range g.succ[v] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("causality: trace graph has a cycle (%d of %d ordered)", len(order), n))
	}
	// Propagate reachability from sinks backwards.
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		for _, t := range g.succ[v] {
			g.hb[v].Set(t)
			g.hb[v].Union(g.hb[t])
		}
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Ops) }

// HB reports whether node i strictly happens-before node j.
func (g *Graph) HB(i, j int) bool { return g.hb[i].Get(j) }

// IndexOf returns the node index of the op with the given trace ID.
func (g *Graph) IndexOf(opID int) (int, bool) {
	i, ok := g.byID[opID]
	return i, ok
}

// Succ returns the direct successors of node i (unsorted).
func (g *Graph) Succ(i int) []int { return g.succ[i] }

// Predecessors returns every node that strictly happens-before i, restricted
// to the given candidate subset (nil means all nodes).
func (g *Graph) Predecessors(i int, subset []int) []int {
	var out []int
	if subset == nil {
		for j := range g.Ops {
			if g.HB(j, i) {
				out = append(out, j)
			}
		}
		return out
	}
	for _, j := range subset {
		if g.HB(j, i) {
			out = append(out, j)
		}
	}
	return out
}

// DownwardClosed reports whether the set s (bitset over nodes restricted to
// universe) is closed under happens-before predecessors within universe:
// for every member j and every universe node i with i→j, i is a member.
func (g *Graph) DownwardClosed(s Bitset, universe []int) bool {
	for _, j := range universe {
		if !s.Get(j) {
			continue
		}
		for _, i := range universe {
			if g.HB(i, j) && !s.Get(i) {
				return false
			}
		}
	}
	return true
}

// DownwardClosure returns the smallest downward-closed superset of s within
// universe.
func (g *Graph) DownwardClosure(s Bitset, universe []int) Bitset {
	out := s.Clone()
	for _, j := range universe {
		if !out.Get(j) {
			continue
		}
		for _, i := range universe {
			if g.HB(i, j) {
				out.Set(i)
			}
		}
	}
	return out
}

// Ideals enumerates every consistent cut (order ideal) of the sub-poset
// induced by universe, invoking visit with a bitset over graph nodes whose
// set bits all belong to universe. Enumeration stops early when visit
// returns false or when limit ideals have been produced (limit <= 0 means
// unlimited). It returns the number of ideals visited.
//
// The enumeration processes universe nodes in index order (a topological
// order, since edges always point forward in recording order) and branches
// on membership; a node may join only if all its universe predecessors have
// joined, which yields each ideal exactly once.
func (g *Graph) Ideals(universe []int, limit int, visit func(Bitset) bool) int {
	// preds[k] = indices (into universe) of predecessors of universe[k].
	preds := make([][]int, len(universe))
	for k, j := range universe {
		for k2, i := range universe {
			if k2 >= k {
				break
			}
			if g.HB(i, j) {
				preds[k] = append(preds[k], k2)
			}
		}
	}
	cur := NewBitset(len(g.Ops))
	inSet := make([]bool, len(universe))
	count := 0
	stopped := false

	var rec func(k int)
	rec = func(k int) {
		if stopped {
			return
		}
		if k == len(universe) {
			count++
			if !visit(cur.Clone()) || (limit > 0 && count >= limit) {
				stopped = true
			}
			return
		}
		// Branch 1: exclude universe[k].
		inSet[k] = false
		rec(k + 1)
		if stopped {
			return
		}
		// Branch 2: include universe[k] if all predecessors are in.
		ok := true
		for _, p := range preds[k] {
			if !inSet[p] {
				ok = false
				break
			}
		}
		if ok {
			inSet[k] = true
			cur.Set(universe[k])
			rec(k + 1)
			cur.Clear(universe[k])
			inSet[k] = false
		}
	}
	rec(0)
	return count
}

// PersistConfig describes the persistence machinery of each lowermost-layer
// process: the journaling mode of user-level servers' local file systems
// and which processes are block devices (barrier semantics).
type PersistConfig struct {
	// Journal maps a local-FS proc name to its journaling mode. Procs not
	// present default to JournalData.
	Journal map[string]vfs.JournalMode
	// Block marks procs whose lowermost ops are block commands.
	Block map[string]bool
}

// ModeOf returns the journaling mode of proc.
func (c PersistConfig) ModeOf(proc string) vfs.JournalMode {
	if c.Journal == nil {
		return vfs.JournalData
	}
	m, ok := c.Journal[proc]
	if !ok {
		return vfs.JournalData
	}
	return m
}

// IsBlock reports whether proc is a block device.
func (c PersistConfig) IsBlock(proc string) bool {
	return c.Block != nil && c.Block[proc]
}

// PersistOrder precomputes the persists-before relation (Algorithm 2) over
// a universe of lowermost-layer nodes.
type PersistOrder struct {
	g        *Graph
	universe []int
	// pb[a].Get(b) ⇔ universe[a] persists-before universe[b]
	pb []Bitset
	// posOf maps graph node index -> position in universe (-1 if absent).
	posOf map[int]int
	// coveredBy[s] lists the graph nodes whose persistence a completed
	// sync node s guarantees (same file or device, executed before s).
	coveredBy map[int][]int
}

// NewPersistOrder computes persists-before over the given lowermost nodes.
func NewPersistOrder(g *Graph, universe []int, cfg PersistConfig) *PersistOrder {
	po := &PersistOrder{
		g:        g,
		universe: universe,
		pb:       make([]Bitset, len(universe)),
		posOf:    make(map[int]int, len(universe)),
	}
	for k, i := range universe {
		po.posOf[i] = k
		po.pb[k] = NewBitset(len(universe))
	}
	// Collect sync nodes per proc for the commit rule.
	syncs := []int{}
	for _, i := range universe {
		if g.Ops[i].Sync {
			syncs = append(syncs, i)
		}
	}
	for a, i := range universe {
		for b, j := range universe {
			if a == b {
				continue
			}
			if po.computePersistsBefore(i, j, cfg, syncs) {
				po.pb[a].Set(b)
			}
		}
	}
	// Sync coverage: once a sync completes, the operations it covers are
	// durable — no later crash can lose them.
	po.coveredBy = map[int][]int{}
	for _, s := range syncs {
		os := g.Ops[s]
		for _, i := range universe {
			if i == s {
				continue
			}
			oi := g.Ops[i]
			if oi.Proc != os.Proc || !g.HB(i, s) {
				continue
			}
			if cfg.IsBlock(oi.Proc) || (os.FileID != "" && os.FileID == oi.FileID) {
				po.coveredBy[s] = append(po.coveredBy[s], i)
			}
		}
	}
	return po
}

// SyncFeasible reports whether a crash state (front, keep) respects commit
// durability: every op covered by a sync that completed within the front
// must be in keep. States violating this cannot occur on real storage.
func (po *PersistOrder) SyncFeasible(front, keep Bitset) bool {
	for s, covered := range po.coveredBy {
		if !front.Get(s) {
			continue
		}
		for _, o := range covered {
			if front.Get(o) && !keep.Get(o) {
				return false
			}
		}
	}
	return true
}

// computePersistsBefore implements Algorithm 2 for a single pair.
func (po *PersistOrder) computePersistsBefore(i, j int, cfg PersistConfig, syncs []int) bool {
	g := po.g
	oi, oj := g.Ops[i], g.Ops[j]

	// The commit rule applies everywhere: a sync covering op i that happened
	// between i and j forces i to persist first. For file systems the sync
	// must cover i's file; for block devices any barrier on i's device
	// suffices.
	for _, s := range syncs {
		os := g.Ops[s]
		if os.Proc != oi.Proc {
			continue
		}
		covers := false
		if cfg.IsBlock(oi.Proc) {
			covers = true // device-wide barrier
		} else if os.FileID != "" && os.FileID == oi.FileID {
			covers = true
		}
		if covers && (s == i || g.HB(i, s)) && g.HB(s, j) {
			return true
		}
	}

	if oi.Proc != oj.Proc {
		// Different servers: only the commit rule above orders them.
		return false
	}

	if cfg.IsBlock(oi.Proc) {
		// Same block device: ordering only through barriers (handled above).
		return false
	}

	// Same local file system: journaling mode decides.
	if !g.HB(i, j) {
		return false
	}
	switch cfg.ModeOf(oi.Proc) {
	case vfs.JournalData:
		return true
	case vfs.JournalOrdered:
		// Metadata is ordered; data persists before subsequent metadata.
		return oj.Meta
	case vfs.JournalWriteback:
		return oi.Meta && oj.Meta
	default:
		return true
	}
}

// PersistsBefore reports whether graph node i persists-before graph node j.
// Both must be members of the universe.
func (po *PersistOrder) PersistsBefore(i, j int) bool {
	a, ok1 := po.posOf[i]
	b, ok2 := po.posOf[j]
	if !ok1 || !ok2 {
		return false
	}
	return po.pb[a].Get(b)
}

// DependsOn returns the closure of Algorithm 1's depends_on: the set of
// universe nodes (as graph indices) that cannot persist if victim does not,
// i.e. victim plus every op reachable through persists-before.
func (po *PersistOrder) DependsOn(victim int, within Bitset) Bitset {
	out := NewBitset(len(po.g.Ops))
	v, ok := po.posOf[victim]
	if !ok {
		return out
	}
	out.Set(victim)
	// Worklist closure over the persists-before relation.
	work := []int{v}
	seen := NewBitset(len(po.universe))
	seen.Set(v)
	for len(work) > 0 {
		a := work[0]
		work = work[1:]
		for _, b := range po.pb[a].Members() {
			nodeB := po.universe[b]
			if within != nil && !within.Get(nodeB) {
				continue
			}
			if !seen.Get(b) {
				seen.Set(b)
				out.Set(nodeB)
				work = append(work, b)
			}
		}
	}
	return out
}

// Universe returns the node universe of the persist order.
func (po *PersistOrder) Universe() []int { return po.universe }
