package causality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paracrash/internal/vfs"
)

// TestQuickPreservedSetsDownwardClosed is the invariant the crash emulator
// relies on: starting from any consistent cut (ideal) and dropping a victim
// together with everything that depends on it (DependsOn), the surviving
// "keep" set is downward closed under persists-before — no op survives while
// an op that must persist before it is lost.
func TestQuickPreservedSetsDownwardClosed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(7)
		ops := randomDAGOps(r, n)
		for _, o := range ops {
			o.FileID = []string{"f", "g"}[r.Intn(2)]
			o.Meta = r.Intn(2) == 0
			if r.Intn(6) == 0 {
				o.Sync = true
				o.Meta = true
			}
		}
		g := Build(ops)
		uni := make([]int, n)
		for i := range uni {
			uni[i] = i
		}
		mode := []vfs.JournalMode{vfs.JournalData, vfs.JournalOrdered, vfs.JournalWriteback}[r.Intn(3)]
		po := NewPersistOrder(g, uni, PersistConfig{Journal: map[string]vfs.JournalMode{
			"a": mode, "b": mode, "c": mode,
		}})

		ok := true
		g.Ideals(uni, 0, func(front Bitset) bool {
			// Every front must itself be downward closed under HB.
			if !g.DownwardClosed(front, uni) {
				ok = false
				return false
			}
			// Drop each member as the victim and check the survivors.
			for _, v := range front.Members() {
				keep := front.Clone()
				keep.Subtract(po.DependsOn(v, front))
				for _, j := range keep.Members() {
					for _, i := range front.Members() {
						if po.PersistsBefore(i, j) && !keep.Get(i) {
							ok = false
							return false
						}
					}
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIdealsEnumerationDeterministic pins down the property the parallel
// exploration engine builds on: enumerating the consistent cuts of the same
// graph twice yields the same fronts in the same order, so a sharded run
// partitions exactly the state list a serial run visits.
func TestIdealsEnumerationDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		n := 4 + r.Intn(8)
		ops := randomDAGOps(r, n)
		g := Build(ops)
		uni := make([]int, n)
		for i := range uni {
			uni[i] = i
		}
		collect := func() []string {
			var keys []string
			g.Ideals(uni, 0, func(b Bitset) bool {
				keys = append(keys, b.Key())
				return true
			})
			return keys
		}
		first, second := collect(), collect()
		if len(first) != len(second) {
			t.Fatalf("round %d: %d ideals vs %d on re-enumeration", round, len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("round %d: ideal %d differs between enumerations", round, i)
			}
		}
		// The relation itself must also rebuild identically.
		po1 := NewPersistOrder(g, uni, PersistConfig{Journal: map[string]vfs.JournalMode{
			"a": vfs.JournalData, "b": vfs.JournalData, "c": vfs.JournalData,
		}})
		po2 := NewPersistOrder(g, uni, PersistConfig{Journal: map[string]vfs.JournalMode{
			"a": vfs.JournalData, "b": vfs.JournalData, "c": vfs.JournalData,
		}})
		for _, i := range uni {
			for _, j := range uni {
				if po1.PersistsBefore(i, j) != po2.PersistsBefore(i, j) {
					t.Fatalf("round %d: PersistsBefore(%d,%d) differs between builds", round, i, j)
				}
			}
		}
	}
}
