package causality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// mkOps builds a linear trace on one proc.
func mkOps(proc string, n int) []*trace.Op {
	out := make([]*trace.Op, n)
	for i := range out {
		out[i] = &trace.Op{ID: i + 1, Proc: proc, Name: "op", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpCreate}}
	}
	return out
}

func TestProgramOrderHB(t *testing.T) {
	g := Build(mkOps("p", 4))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := i < j
			if got := g.HB(i, j); got != want {
				t.Errorf("HB(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestCommEdgeAndTransitivity(t *testing.T) {
	// p: a, send(m) ; q: recv(m), b — a happens-before b transitively.
	ops := []*trace.Op{
		{ID: 1, Proc: "p", Name: "a", Parent: -1},
		{ID: 2, Proc: "p", Name: "send", Parent: -1, MsgID: 1, IsSend: true},
		{ID: 3, Proc: "q", Name: "recv", Parent: -1, MsgID: 1},
		{ID: 4, Proc: "q", Name: "b", Parent: -1},
	}
	g := Build(ops)
	if !g.HB(0, 3) {
		t.Fatal("a should happen-before b through the message")
	}
	if g.HB(3, 0) {
		t.Fatal("HB must be antisymmetric")
	}
}

func TestParentEdge(t *testing.T) {
	ops := []*trace.Op{
		{ID: 1, Proc: "p", Name: "caller", Parent: -1},
		{ID: 2, Proc: "q", Name: "callee", Parent: 1},
	}
	g := Build(ops)
	if !g.HB(0, 1) {
		t.Fatal("caller should happen-before callee")
	}
}

func TestIdealsOfChain(t *testing.T) {
	// A chain of n ops has exactly n+1 ideals (prefixes).
	g := Build(mkOps("p", 5))
	uni := []int{0, 1, 2, 3, 4}
	count := 0
	g.Ideals(uni, 0, func(b Bitset) bool {
		count++
		// Every ideal of a chain is a prefix.
		members := b.Members()
		for i, m := range members {
			if m != i {
				t.Fatalf("non-prefix ideal %v", members)
			}
		}
		return true
	})
	if count != 6 {
		t.Fatalf("chain of 5 has %d ideals, want 6", count)
	}
}

func TestIdealsOfAntichain(t *testing.T) {
	// n independent ops (different procs) have 2^n ideals.
	ops := []*trace.Op{
		{ID: 1, Proc: "a", Parent: -1},
		{ID: 2, Proc: "b", Parent: -1},
		{ID: 3, Proc: "c", Parent: -1},
	}
	g := Build(ops)
	n := g.Ideals([]int{0, 1, 2}, 0, func(Bitset) bool { return true })
	if n != 8 {
		t.Fatalf("antichain of 3 has %d ideals, want 8", n)
	}
}

func TestIdealsLimit(t *testing.T) {
	g := Build(mkOps("p", 10))
	uni := make([]int, 10)
	for i := range uni {
		uni[i] = i
	}
	n := g.Ideals(uni, 4, func(Bitset) bool { return true })
	if n != 4 {
		t.Fatalf("limit ignored: %d", n)
	}
}

// randomDAGOps builds ops on several procs with random comm edges.
func randomDAGOps(r *rand.Rand, n int) []*trace.Op {
	procs := []string{"a", "b", "c"}
	ops := make([]*trace.Op, n)
	msg := 1
	for i := range ops {
		ops[i] = &trace.Op{ID: i + 1, Proc: procs[r.Intn(3)], Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpCreate}}
	}
	// Random forward message edges.
	for i := 0; i+1 < n; i++ {
		if r.Intn(3) == 0 {
			j := i + 1 + r.Intn(n-i-1)
			if ops[i].MsgID == 0 && ops[j].MsgID == 0 && ops[i].Proc != ops[j].Proc {
				ops[i].MsgID, ops[i].IsSend = msg, true
				ops[j].MsgID = msg
				msg++
			}
		}
	}
	return ops
}

// TestQuickIdealsAreDownwardClosed: every enumerated ideal is downward
// closed, and the enumeration matches a brute-force subset filter.
func TestQuickIdealsAreDownwardClosed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		g := Build(randomDAGOps(r, n))
		uni := make([]int, n)
		for i := range uni {
			uni[i] = i
		}
		// Brute force: count downward-closed subsets.
		brute := 0
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for j := 0; j < n && ok; j++ {
				if mask&(1<<j) == 0 {
					continue
				}
				for i := 0; i < n; i++ {
					if g.HB(i, j) && mask&(1<<i) == 0 {
						ok = false
						break
					}
				}
			}
			if ok {
				brute++
			}
		}
		enum := 0
		closedOK := true
		g.Ideals(uni, 0, func(b Bitset) bool {
			enum++
			if !g.DownwardClosed(b, uni) {
				closedOK = false
			}
			return true
		})
		return closedOK && enum == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// persistFixture builds a two-server trace for Algorithm 2 truth tables:
//
//	s1: meta1, data1, fsync(data1.file), meta2
//	s2: data2
//
// with s1 ops happening before the s2 op (comm edge).
func persistFixture(mode vfs.JournalMode) (*Graph, *PersistOrder, []int) {
	ops := []*trace.Op{
		{ID: 1, Proc: "s1", Name: "creat", Meta: true, FileID: "f", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpCreate}},
		{ID: 2, Proc: "s1", Name: "pwrite", FileID: "f", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpWrite}},
		{ID: 3, Proc: "s1", Name: "fsync", FileID: "f", Sync: true, Meta: true, Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpSync}},
		{ID: 4, Proc: "s1", Name: "rename", Meta: true, FileID: "g", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpRename}},
		{ID: 5, Proc: "s1", Name: "send", MsgID: 9, IsSend: true, Parent: -1, Layer: trace.LayerLocalFS},
		{ID: 6, Proc: "s2", Name: "recv", MsgID: 9, Parent: -1, Layer: trace.LayerLocalFS},
		{ID: 7, Proc: "s2", Name: "pwrite", FileID: "h", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpWrite}},
	}
	g := Build(ops)
	uni := []int{0, 1, 2, 3, 6}
	po := NewPersistOrder(g, uni, PersistConfig{Journal: map[string]vfs.JournalMode{"s1": mode, "s2": mode}})
	return g, po, uni
}

func TestPersistsBeforeDataJournal(t *testing.T) {
	_, po, _ := persistFixture(vfs.JournalData)
	// Same server, data journaling: execution order is persist order.
	if !po.PersistsBefore(0, 1) || !po.PersistsBefore(1, 3) {
		t.Fatal("data journaling must order same-server ops")
	}
	if po.PersistsBefore(1, 0) {
		t.Fatal("persist order must not be symmetric")
	}
	// Cross-server without a covering sync: unordered.
	if po.PersistsBefore(3, 6) {
		t.Fatal("cross-server ops without sync must be unordered")
	}
	// Cross-server THROUGH the sync: pwrite(f) fsync(f) ... s2 op.
	if !po.PersistsBefore(1, 6) {
		t.Fatal("fsync must order the covered write before later remote ops")
	}
}

func TestPersistsBeforeWriteback(t *testing.T) {
	// Sync-free fixture: meta, data, meta on one server.
	ops := []*trace.Op{
		{ID: 1, Proc: "s", Name: "creat", Meta: true, FileID: "f", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpCreate}},
		{ID: 2, Proc: "s", Name: "pwrite", FileID: "f", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpWrite}},
		{ID: 3, Proc: "s", Name: "rename", Meta: true, FileID: "g", Parent: -1,
			Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpRename}},
	}
	g := Build(ops)
	po := NewPersistOrder(g, []int{0, 1, 2}, PersistConfig{
		Journal: map[string]vfs.JournalMode{"s": vfs.JournalWriteback},
	})
	if !po.PersistsBefore(0, 2) {
		t.Fatal("meta-meta must stay ordered in writeback mode")
	}
	if po.PersistsBefore(1, 2) || po.PersistsBefore(0, 1) {
		t.Fatal("data must be unordered in writeback mode")
	}

	// In the synced fixture, fsync coverage applies in every mode: the
	// covered write persists before everything causally after the sync.
	_, po2, _ := persistFixture(vfs.JournalWriteback)
	if !po2.PersistsBefore(1, 6) || !po2.PersistsBefore(1, 3) {
		t.Fatal("fsync coverage applies in every mode")
	}
}

func TestPersistsBeforeOrdered(t *testing.T) {
	_, po, _ := persistFixture(vfs.JournalOrdered)
	// Data persists before subsequent metadata; meta-meta ordered.
	if !po.PersistsBefore(1, 3) || !po.PersistsBefore(0, 3) {
		t.Fatal("ordered mode must order writes before following metadata")
	}
	// Metadata does not order subsequent data.
	if po.PersistsBefore(0, 1) {
		t.Fatal("ordered mode must not order metadata before following data")
	}
}

func TestBlockBarrierOrdering(t *testing.T) {
	ops := []*trace.Op{
		{ID: 1, Proc: "d", Name: "scsi_write", Parent: -1, Layer: trace.LayerBlock, Payload: vfs.Op{}},
		{ID: 2, Proc: "d", Name: "scsi_write", Parent: -1, Layer: trace.LayerBlock, Payload: vfs.Op{}},
		{ID: 3, Proc: "d", Name: "scsi_sync", Sync: true, Parent: -1, Layer: trace.LayerBlock, Payload: vfs.Op{}},
		{ID: 4, Proc: "d", Name: "scsi_write", Parent: -1, Layer: trace.LayerBlock, Payload: vfs.Op{}},
	}
	g := Build(ops)
	uni := []int{0, 1, 2, 3}
	po := NewPersistOrder(g, uni, PersistConfig{Block: map[string]bool{"d": true}})
	// Writes on either side of the barrier are ordered across it...
	if !po.PersistsBefore(0, 3) || !po.PersistsBefore(1, 3) {
		t.Fatal("barrier must order writes across it")
	}
	// ...but not among themselves.
	if po.PersistsBefore(0, 1) || po.PersistsBefore(1, 0) {
		t.Fatal("writes between barriers must be free to reorder")
	}
}

func TestDependsOnClosure(t *testing.T) {
	g, po, uni := persistFixture(vfs.JournalData)
	full := NewBitset(g.Len())
	for _, i := range uni {
		full.Set(i)
	}
	// Dropping the first op drops everything it persists-before.
	dep := po.DependsOn(0, full)
	for _, i := range []int{0, 1, 3, 6} {
		if !dep.Get(i) {
			t.Errorf("DependsOn(creat) missing node %d", i)
		}
	}
	// Dropping the last s1 op drops only itself (nothing after it).
	dep = po.DependsOn(3, full)
	if dep.Count() != 1 || !dep.Get(3) {
		t.Errorf("DependsOn(rename) = %v", dep.Members())
	}
}

func TestSyncFeasible(t *testing.T) {
	g, po, uni := persistFixture(vfs.JournalData)
	front := NewBitset(g.Len())
	for _, i := range uni {
		front.Set(i)
	}
	// Dropping the fsynced write while the fsync completed is impossible.
	keep := front.Clone()
	keep.Clear(1)
	if po.SyncFeasible(front, keep) {
		t.Fatal("losing a synced write must be infeasible")
	}
	// With the front cut before the sync it is fine.
	front2 := NewBitset(g.Len())
	front2.Set(0)
	front2.Set(1)
	keep2 := front2.Clone()
	keep2.Clear(1)
	if !po.SyncFeasible(front2, keep2) {
		t.Fatal("losing an unsynced write must be feasible")
	}
}

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 || !b.Get(64) || b.Get(63) {
		t.Fatal("basic bit ops broken")
	}
	c := b.Clone()
	c.Clear(64)
	if b.Count() != 3 || c.Count() != 2 {
		t.Fatal("clone aliases storage")
	}
	if !b.ContainsAll(c) || c.ContainsAll(b) {
		t.Fatal("ContainsAll wrong")
	}
	c.Union(b)
	if !c.Equal(b) {
		t.Fatal("union/equal wrong")
	}
	c.Subtract(b)
	if c.Count() != 0 {
		t.Fatal("subtract wrong")
	}
	members := b.Members()
	if len(members) != 3 || members[0] != 0 || members[2] != 129 {
		t.Fatalf("members = %v", members)
	}
}

// TestQuickPersistImpliesHB: on user-level file systems, persists-before is
// always a sub-relation of happens-before.
func TestQuickPersistImpliesHB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		ops := randomDAGOps(r, n)
		for i, o := range ops {
			o.FileID = []string{"f", "g"}[r.Intn(2)]
			o.Meta = r.Intn(2) == 0
			if r.Intn(6) == 0 {
				o.Sync = true
				o.Meta = true
			}
			_ = i
		}
		g := Build(ops)
		uni := make([]int, n)
		for i := range uni {
			uni[i] = i
		}
		mode := []vfs.JournalMode{vfs.JournalData, vfs.JournalOrdered, vfs.JournalWriteback}[r.Intn(3)]
		po := NewPersistOrder(g, uni, PersistConfig{Journal: map[string]vfs.JournalMode{
			"a": mode, "b": mode, "c": mode,
		}})
		for _, i := range uni {
			for _, j := range uni {
				if i != j && po.PersistsBefore(i, j) && !g.HB(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
