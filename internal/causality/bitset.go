package causality

import (
	"encoding/binary"
	"math/bits"
)

// Bitset is a fixed-capacity bit vector used to represent op sets (crash
// states, cuts, closures) compactly. The capacity is fixed at creation; all
// operations assume operands of equal capacity.
//
// A Bitset is safe for concurrent readers as long as no goroutine mutates
// it; the exploration engine shares crash-front bitsets read-only across
// workers (mutating methods like Set/Subtract are only ever applied to
// Clone()d copies there).
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Clone returns a copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Equal reports whether b and o hold the same bits.
func (b Bitset) Equal(o Bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union sets b to b ∪ o.
func (b Bitset) Union(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Subtract sets b to b \ o.
func (b Bitset) Subtract(o Bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// Intersects reports whether b ∩ o is non-empty.
func (b Bitset) Intersects(o Bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether o ⊆ b.
func (b Bitset) ContainsAll(o Bitset) bool {
	for i := range o {
		if o[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// Key returns a compact string form usable as a map key.
func (b Bitset) Key() string {
	buf := make([]byte, 8*len(b))
	for i, w := range b {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return string(buf)
}

// Members returns the indices of set bits in ascending order.
func (b Bitset) Members() []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			out = append(out, wi*64+i)
			w &^= 1 << uint(i)
		}
	}
	return out
}
