# ParaCrash-Go development targets. Everything is stdlib Go; no network or
# host file-system access is needed.

GO ?= go

.PHONY: all build vet test race ci bench experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Everything a change must pass before it lands.
ci: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customworkload
	$(GO) run ./examples/custompfs
	$(GO) run ./examples/models
	$(GO) run ./examples/hdf5workflow

# Short fuzzing session over the HDF5 parser.
fuzz:
	$(GO) test ./internal/hdf5/ -fuzz FuzzParse -fuzztime 30s

clean:
	$(GO) clean ./...
