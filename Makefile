# ParaCrash-Go development targets. Everything is stdlib Go; no network or
# host file-system access is needed.

GO ?= go

.PHONY: all build vet fmtcheck doclint persistlint test race ci bench benchgate gobench experiments examples fuzz fuzz-smoke chaos representative incremental selfcheck clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean.
fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Fail when any package misses a package comment or any exported
# identifier is undocumented (the godoc coverage gate).
# Documentation gates: godoc coverage, plus docs/API.md kept in lockstep
# with the routes actually registered on the serve mux (both directions).
doclint:
	$(GO) run ./internal/tools/doclint .
	$(GO) run ./internal/tools/routedoc .

# Single-persistence-layer gate: daemon state packages must route every
# durable write through internal/statefs (the crash-tested layer), never
# raw os.Create/os.Rename/os.WriteFile/os.OpenFile/os.CreateTemp.
persistlint:
	$(GO) test ./internal/tools/persistlint/ -count=1
	$(GO) run ./internal/tools/persistlint ./internal/serve ./internal/paracrash

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Everything a change must pass before it lands.
ci: build vet fmtcheck doclint persistlint test race fuzz-smoke chaos representative incremental selfcheck benchgate

# Run the benchmark trajectory with observability enabled and write the
# per-run summary (phase timings, counters, Stats) as BENCH_<stamp>.json,
# then diff states_per_sec per cell against the latest committed trajectory
# file and warn on >20% regressions.
bench:
	@out=BENCH_$$(date -u +%Y%m%dT%H%M%SZ).json; \
	$(GO) run ./cmd/experiments -exp bench -bench-out $$out && \
	$(GO) run ./internal/tools/benchdiff $$out

# Enforced perf-regression gate: the benchdiff gate-mode unit tests, then a
# fresh run of the fast fixed-seed cell subset compared against the latest
# committed BENCH_*.json. A cell whose states_per_sec drops, or whose
# restores_per_state rises, beyond the tolerance fails the build (exit 1).
# The default tolerance is deliberately loose — wall-clock throughput varies
# across machines — while still catching order-of-magnitude hot-path
# regressions; tighten it locally with BENCHGATE_TOLERANCE=0.2.
BENCHGATE_TOLERANCE ?= 0.5
benchgate:
	$(GO) test ./internal/tools/benchdiff/ -count=1
	@out=$$(mktemp); \
	trap 'rm -f "$$out"' EXIT; \
	$(GO) run ./cmd/experiments -exp bench -bench-cells fast -bench-out "$$out" && \
	$(GO) run ./internal/tools/benchdiff -gate -subset fast -max-regress $(BENCHGATE_TOLERANCE) "$$out"

# Go micro/macro benchmarks (paper tables and figures as testing.B).
gobench:
	$(GO) test -bench=. -benchmem ./...

# Representative-state exploration gate: the brute-force-equivalence
# differential harness (every backend, both workload families, fault
# injection, mid-class kill/resume) plus the digest fuzz target's seed
# corpus and the white-box collision proofs.
representative:
	$(GO) test ./internal/paracrash/ -run 'TestRepresentative|TestClassKey|TestCrashDigest|FuzzStateDigest' -count=1 -v

# O(delta) reconstruction gate: the incremental engine's differential suite
# (every backend, both workload families) — verdict equivalence against the
# legacy full-restore engine, state-level Serialize/Hash identity of delta
# reconstruction, fault transparency and kill/resume chaos.
incremental:
	$(GO) test ./internal/paracrash/ -run 'TestIncremental' -count=1 -v

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customworkload
	$(GO) run ./examples/custompfs
	$(GO) run ./examples/models
	$(GO) run ./examples/hdf5workflow

# Coverage-guided fuzzing over every fuzz target, FUZZTIME each, then a
# metamorphic campaign over the exploration engine itself.
FUZZTIME ?= 30s
FUZZSEEDS ?= 64
fuzz:
	$(GO) test ./internal/hdf5/ -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -fuzz FuzzTraceRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/paracrash/ -fuzz FuzzParseModel -fuzztime $(FUZZTIME)
	$(GO) test ./internal/paracrash/ -fuzz FuzzStateDigest -fuzztime $(FUZZTIME)
	$(GO) run ./cmd/experiments -exp fuzz -seeds $(FUZZSEEDS) -fuzz-out corpus

# Fast fuzzing gate for CI: a few seconds per coverage-guided target plus a
# small all-backend metamorphic campaign.
fuzz-smoke:
	$(GO) test ./internal/hdf5/ -fuzz FuzzParse -fuzztime 5s
	$(GO) test ./internal/trace/ -fuzz FuzzTraceRoundTrip -fuzztime 5s
	$(GO) test ./internal/paracrash/ -fuzz FuzzParseModel -fuzztime 5s
	$(GO) test ./internal/paracrash/ -fuzz FuzzStateDigest -fuzztime 5s
	$(GO) run ./cmd/experiments -exp fuzz -seeds 8 -enum-ops 1

# Chaos gate: run explorations under injected faults, kill them mid-run and
# resume from the checkpoint journal; the resumed reports must be
# byte-identical to clean uninterrupted runs, and a hard-faulted fuzz
# campaign must quarantine cells instead of dying.
chaos:
	$(GO) test ./internal/paracrash/ -run 'TestChaosResumeDeterminism|TestFaultTransparency|TestHardFaults|TestRepresentativeChaosResume|TestRepresentativeQuarantine' -count=1 -v
	$(GO) test ./internal/fuzzcamp/ -run 'TestCampaignHealsInjectedFaults|TestCampaignQuarantinesHardFaultedCells' -count=1
	$(GO) test ./internal/obs/ ./internal/serve/ -run 'TestChaos' -count=1 -v

# Self-check gate: the checker turned on itself. For every registered
# statefs crash point, kill the daemon scenario exactly there, restart it
# through fsck, and require that the crash fired (coverage), no
# acknowledged job was lost, no verdict was duplicated, and the recovered
# report is byte-identical to an uncrashed run's. The statefs unit tests
# ride along: they pin the post-crash disk state of every stage.
selfcheck:
	$(GO) test ./internal/statefs/ -count=1
	$(GO) test ./internal/serve/ -run 'TestSelfCheck' -count=1 -v

clean:
	$(GO) clean ./...
