// Package paracrash is a crash-consistency testing framework for HPC I/O
// stacks, reproducing "Pinpointing Crash-Consistency Bugs in the HPC I/O
// Stack: A Cross-Layer Approach" (SC '21).
//
// ParaCrash runs a test program against a simulated parallel file system
// (optionally topped by a simulated HDF5/NetCDF library over MPI-IO),
// traces every layer, emulates crashes by replaying subsets of the
// lowermost storage operations allowed by the persistence semantics, and
// compares each recovered state against golden states generated from the
// preserved sets a crash-consistency model permits. Inconsistencies are
// attributed to the responsible layer and classified as reordering or
// atomicity violations.
//
// Quick start:
//
//	rec := paracrash.NewRecorder()
//	fs, _ := paracrash.NewFileSystem("beegfs", paracrash.DefaultConfig(), rec)
//	report, _ := paracrash.Run(fs, nil, paracrash.ARVR(), paracrash.DefaultOptions())
//	fmt.Print(report.Format())
//
// The five simulated parallel file systems (BeeGFS, OrangeFS, GlusterFS,
// GPFS, Lustre) and the ext4 baseline live in internal/pfs; the HDF5 and
// NetCDF library simulations in internal/hdf5 and internal/stack. Custom
// file systems implement the FileSystem interface, custom test programs
// the Workload interface.
package paracrash

import (
	"context"

	"paracrash/internal/exps"
	core "paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/stack"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// Core types re-exported from the testing engine.
type (
	// Report is the outcome of one testing run.
	Report = core.Report
	// Bug is a deduplicated crash-consistency bug.
	Bug = core.Bug
	// Options configures a run (exploration mode, consistency models,
	// emulator bounds).
	Options = core.Options
	// Model is a crash-consistency model.
	Model = core.Model
	// Mode is a crash-state exploration strategy.
	Mode = core.Mode
	// Stats records exploration effort.
	Stats = core.Stats
	// Workload is a test program (preamble + traced body).
	Workload = core.Workload
	// Library abstracts the I/O library layer for cross-layer checking.
	Library = core.Library

	// FileSystem is a testable parallel file system.
	FileSystem = pfs.FileSystem
	// Client is the POSIX-like client interface test programs use.
	Client = pfs.Client
	// Config describes a PFS deployment.
	Config = pfs.Config
	// Tree is a PFS's logical namespace, the golden-master comparison unit.
	Tree = pfs.Tree

	// Recorder collects cross-layer traces.
	Recorder = trace.Recorder
	// Op is a single traced operation.
	Op = trace.Op

	// H5Params are the HDF5/NetCDF program sensitivity knobs.
	H5Params = workloads.H5Params
	// H5Workload is an HDF5/NetCDF test program with its library adapter.
	H5Workload = workloads.H5Workload
)

// Consistency models (paper §4.4.2).
const (
	ModelStrict   = core.ModelStrict
	ModelCommit   = core.ModelCommit
	ModelCausal   = core.ModelCausal
	ModelBaseline = core.ModelBaseline
)

// Exploration strategies (paper §5).
const (
	ModeBrute     = core.ModeBrute
	ModePruning   = core.ModePruning
	ModeOptimized = core.ModeOptimized
)

// Run executes the ParaCrash pipeline: trace, emulate crashes, check each
// recovered state against the legal states of each layer's model, and
// report attributed, classified, deduplicated bugs. lib may be nil for
// POSIX programs.
func Run(fs FileSystem, lib Library, w Workload, opts Options) (*Report, error) {
	return core.Run(fs, lib, w, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline passes, exploration stops at the next crash-state boundary and
// the error wraps ctx.Err(). An uncancelled RunContext produces a report
// byte-identical to Run's.
func RunContext(ctx context.Context, fs FileSystem, lib Library, w Workload, opts Options) (*Report, error) {
	return core.RunContext(ctx, fs, lib, w, opts)
}

// DefaultOptions mirrors the paper's evaluation settings: pruning
// exploration, k=1 victims over all consistent cuts, causal PFS model,
// baseline library model.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewRecorder returns a fresh trace recorder.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// DefaultConfig returns the paper's small-cluster deployment (two metadata
// and two storage servers, scaled-down striping).
func DefaultConfig() Config { return pfs.DefaultConfig() }

// ConfigFor returns the paper's Table 2 deployment for a named file system.
func ConfigFor(name string) Config { return exps.ConfigFor(name) }

// FileSystems lists the available simulated file systems.
func FileSystems() []string { return exps.FSNames() }

// NewFileSystem constructs a simulated file system by name: "beegfs",
// "orangefs", "glusterfs", "gpfs", "lustre", or "ext4".
func NewFileSystem(name string, conf Config, rec *Recorder) (FileSystem, error) {
	return exps.NewFS(name, conf, rec)
}

// The paper's POSIX test programs (§6.2).
var (
	// ARVR is Atomic-Replace-via-Rename.
	ARVR = workloads.ARVR
	// CR is Create-and-Rename.
	CR = workloads.CR
	// RC is Rename-and-Create.
	RC = workloads.RC
	// WAL is Write-Ahead-Logging.
	WAL = workloads.WAL
	// Fig5Program is the paper's Figure 5 two-process model example.
	Fig5Program = workloads.Fig5Program
)

// The paper's HDF5/NetCDF test programs (§6.2). Each returns a workload
// whose Library() adapter plugs into Run for cross-layer checking.
var (
	H5Create         = workloads.H5Create
	H5Delete         = workloads.H5Delete
	H5Rename         = workloads.H5Rename
	H5Resize         = workloads.H5Resize
	CDFCreate        = workloads.CDFCreate
	CDFRename        = workloads.CDFRename
	H5ParallelCreate = workloads.H5ParallelCreate
	H5ParallelResize = workloads.H5ParallelResize
)

// DefaultH5Params mirrors the paper's default dataset shapes (scaled).
func DefaultH5Params() H5Params { return workloads.DefaultH5Params() }

// NewHDF5Library returns a library adapter for an HDF5 file at path.
func NewHDF5Library(path string) Library {
	return stack.NewLibrary(stack.DialectHDF5, path)
}

// NewNetCDFLibrary returns a library adapter for a NetCDF file at path.
func NewNetCDFLibrary(path string) Library {
	return stack.NewLibrary(stack.DialectNetCDF, path)
}
