// Command h5inspect prints the object map of a simulated HDF5 file image —
// which byte ranges hold which library data structures — as the JSON
// document the paper's h5inspect tool emits for trace correlation
// (Figure 4) and semantic state pruning (§5.3).
//
// With no argument it builds the paper's default initial file (two groups,
// one dataset each) in memory and inspects that; with a path it reads the
// image from disk.
package main

import (
	"flag"
	"fmt"
	"os"

	"paracrash/internal/hdf5"
)

func main() {
	check := flag.Bool("check", false, "also run the h5check structural pass and print the logical state")
	flag.Parse()

	var img []byte
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		fatalIf(err)
		img = b
	} else {
		img = demoImage()
	}

	out, err := hdf5.InspectJSON(img)
	fatalIf(err)
	fmt.Println(string(out))

	if *check {
		st := hdf5.Parse(img, false)
		fmt.Println("\nh5check logical state:")
		fmt.Print(st.Serialize())
	}
}

func demoImage() []byte {
	be := &hdf5.MemBackend{}
	f, err := hdf5.Format(be)
	fatalIf(err)
	fatalIf(f.CreateGroup("/g1"))
	fatalIf(f.CreateGroup("/g2"))
	fatalIf(f.CreateDataset("/g1/d1", 4, 4))
	fatalIf(f.CreateDataset("/g2/d2", 4, 4))
	fatalIf(f.WriteDataset("/g1/d1", []byte("0123456789abcdef")))
	fatalIf(f.Close())
	return be.Buf
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "h5inspect:", err)
		os.Exit(1)
	}
}
