// Command h5replay re-executes the I/O-library operations of a recorded
// trace against a file image and prints the resulting logical state — the
// standalone form of the paper's h5replay tool (§5.1), which generates and
// runs a replay program for a given sequence of HDF5 calls.
//
// Usage:
//
//	paracrash -fs beegfs -program H5-create -dump-trace /tmp/t.json
//	h5replay -trace /tmp/t.json
//	h5replay -trace /tmp/t.json -image file.h5 -netcdf
//
// Without -image the paper's standard preamble image (two groups with one
// dataset each) is synthesised as the starting state.
package main

import (
	"flag"
	"fmt"
	"os"

	"paracrash/internal/hdf5"
	"paracrash/internal/stack"
	"paracrash/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "trace JSON produced by paracrash -dump-trace (required)")
	imagePath := flag.String("image", "", "starting file image (default: the standard preamble)")
	netcdf := flag.Bool("netcdf", false, "replay with NetCDF (eager-open) semantics")
	filePath := flag.String("file", "/test.h5", "library file path within the trace")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "h5replay: -trace is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*tracePath)
	fatalIf(err)
	ops, err := trace.Decode(raw)
	fatalIf(err)

	var libOps []*trace.Op
	for _, o := range ops {
		if o.Layer == trace.LayerIOLib {
			libOps = append(libOps, o)
		}
	}
	if len(libOps) == 0 {
		fmt.Fprintln(os.Stderr, "h5replay: trace contains no library operations")
		os.Exit(1)
	}

	var seed []byte
	if *imagePath != "" {
		seed, err = os.ReadFile(*imagePath)
		fatalIf(err)
	} else {
		seed = standardPreamble()
	}

	dialect := stack.DialectHDF5
	if *netcdf {
		dialect = stack.DialectNetCDF
	}
	lib := stack.NewLibrary(dialect, *filePath)
	lib.SeedImage(seed)

	state, err := lib.Replay(libOps)
	fatalIf(err)
	fmt.Printf("replayed %d library operations:\n%s", len(libOps), state)
}

func standardPreamble() []byte {
	be := &hdf5.MemBackend{}
	f, err := hdf5.Format(be)
	fatalIf(err)
	fatalIf(f.CreateGroup("/g1"))
	fatalIf(f.CreateGroup("/g2"))
	fatalIf(f.CreateDataset("/g1/d1", 4, 4))
	fatalIf(f.CreateDataset("/g2/d2", 4, 4))
	fatalIf(f.Close())
	return be.Buf
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "h5replay:", err)
		os.Exit(1)
	}
}
