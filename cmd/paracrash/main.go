// Command paracrash runs one test program against one simulated parallel
// file system and prints the crash-consistency report — the CLI face of
// the testing framework.
//
// Usage:
//
//	paracrash -fs beegfs -program ARVR
//	paracrash -fs lustre -program H5-resize -mode optimized -k 2
//	paracrash -fs gpfs -program CDF-create -pfs-model causal -lib-model baseline
//	paracrash -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
	"paracrash/internal/serve"
	"paracrash/internal/workloads"
)

func main() {
	var (
		fsName   = flag.String("fs", "beegfs", "file system under test (beegfs, orangefs, glusterfs, gpfs, lustre, ext4)")
		progName = flag.String("program", "ARVR", "test program (see -list)")
		mode     = flag.String("mode", "pruning", "exploration strategy: brute, pruning, optimized")
		pfsModel = flag.String("pfs-model", "causal", "PFS consistency model: strict, commit, causal, baseline")
		libModel = flag.String("lib-model", "baseline", "I/O library consistency model")
		k        = flag.Int("k", 1, "max victims per crash front (Algorithm 1's k)")
		workers  = flag.Int("workers", 0, "parallel exploration workers (0 = one per CPU, 1 = serial)")
		servers  = flag.Int("servers", 0, "override total server count (0 = paper default)")
		stripe   = flag.Int64("stripe", 0, "override stripe size in bytes (0 = default)")
		clients  = flag.Int("clients", 2, "MPI ranks for the parallel programs")
		rows     = flag.Int("rows", 4, "preamble dataset rows")
		cols     = flag.Int("cols", 4, "preamble dataset cols")
		rrows    = flag.Int("resize-rows", 8, "H5-resize target rows")
		rcols    = flag.Int("resize-cols", 8, "H5-resize target cols")
		verbose  = flag.Bool("v", false, "also print each inconsistent crash state")
		list     = flag.Bool("list", false, "list programs and file systems, then exit")
		dumpPath = flag.String("dump-trace", "", "write the traced execution as JSON to this file instead of testing")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")

		representative = flag.Bool("representative", true, "group crash states into recovered-content equivalence classes and check one representative per class")
		noRep          = flag.Bool("no-representative", false, "check every crash state brute-force-equivalently (same as -representative=false)")
		incremental    = flag.Bool("incremental", true, "reconstruct crash states in O(delta) via cached prefix-root restores and delta replay")
		noInc          = flag.Bool("no-incremental", false, "rebuild every crash state with a full restore and replay (same as -incremental=false)")

		remote = flag.String("remote", "", "submit the run as a job to a paracrashd at this address (e.g. localhost:7077) instead of exploring locally")
		apiKey = flag.String("api-key", "", "API key for a multi-tenant paracrashd (with -remote); also honours the PARACRASH_API_KEY environment variable")
		shards = flag.Int("shards", 0, "with -remote: ask the daemon to split this job across its worker fleet into this many shards (0 = daemon default)")

		retries      = flag.Int("retries", 0, "max attempts per crash-state check before quarantining it (0 = default 3)")
		retryBackoff = flag.Duration("retry-backoff", 0, "base backoff between check retries (0 = default 2ms)")
		resumePath   = flag.String("resume", "", "checkpoint journal path: journal verdicts there and resume from it on restart")
		faultSeed    = flag.Int64("fault-seed", 0, "fault-injection seed (with -fault-rate)")
		faultRate    = flag.Float64("fault-rate", 0, "inject faults into the engine's own I/O with this probability in [0,1] (0 = off)")

		metricsPath  = flag.String("metrics", "", "write the run's observability summary (phase timings, counters, gauges) as JSON to this file")
		progress     = flag.Bool("progress", false, "print a one-line progress ticker to stderr every second")
		progJSONL    = flag.String("progress-jsonl", "", "write machine-readable progress events (one JSON object per line) to this file")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof, expvar, /debug/obs and /metrics on this address (e.g. localhost:6060)")
		sinkInterval = flag.Duration("sink-interval", time.Second, "telemetry sampling interval for -sink fan-out")
	)
	var sinkSpecs obs.SinkSpecList
	flag.Var(&sinkSpecs, "sink", "attach a telemetry sink (repeatable): stdout, stderr, jsonl:PATH, push:URL")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "paracrash: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		fatalIf(fmt.Errorf("-workers must be >= 0 (0 = one per CPU, 1 = serial), got %d", *workers))
	}
	if *k < 1 {
		fatalIf(fmt.Errorf("-k must be >= 1 (victims per crash front), got %d", *k))
	}
	if *servers < 0 {
		fatalIf(fmt.Errorf("-servers must be >= 0 (0 = paper default), got %d", *servers))
	}
	if *stripe < 0 {
		fatalIf(fmt.Errorf("-stripe must be >= 0 (0 = default), got %d", *stripe))
	}
	if *clients < 1 {
		fatalIf(fmt.Errorf("-clients must be >= 1, got %d", *clients))
	}
	if *retries < 0 {
		fatalIf(fmt.Errorf("-retries must be >= 0 (0 = default), got %d", *retries))
	}
	if *retryBackoff < 0 {
		fatalIf(fmt.Errorf("-retry-backoff must be >= 0 (0 = default), got %v", *retryBackoff))
	}
	if *faultRate < 0 || *faultRate > 1 {
		fatalIf(fmt.Errorf("-fault-rate must be in [0,1], got %g", *faultRate))
	}
	if len(sinkSpecs) > 0 && *sinkInterval <= 0 {
		fatalIf(fmt.Errorf("-sink-interval must be > 0 when sinks are attached, got %v", *sinkInterval))
	}
	repSet, incSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "representative":
			repSet = true
		case "incremental":
			incSet = true
		}
	})
	if repSet && *representative && *noRep {
		fatalIf(fmt.Errorf("-representative=true conflicts with -no-representative"))
	}
	if incSet && *incremental && *noInc {
		fatalIf(fmt.Errorf("-incremental=true conflicts with -no-incremental"))
	}
	repOn := *representative && !*noRep
	incOn := *incremental && !*noInc

	if *list {
		fmt.Println("file systems:", strings.Join(exps.FSNames(), ", "))
		fmt.Print("programs:     ")
		var names []string
		for _, p := range exps.Programs() {
			names = append(names, p.Name)
		}
		fmt.Println(strings.Join(names, ", "))
		return
	}

	prog, err := exps.ProgramByName(*progName)
	fatalIf(err)

	if *shards < 0 {
		fatalIf(fmt.Errorf("-shards must be >= 0, got %d", *shards))
	}
	if *remote == "" && (*shards > 0 || *apiKey != "") {
		fatalIf(fmt.Errorf("-shards and -api-key only apply with -remote"))
	}
	if *remote != "" {
		if *dumpPath != "" || *servers > 0 || *stripe > 0 || *resumePath != "" || *faultRate > 0 {
			fatalIf(fmt.Errorf("-dump-trace, -servers, -stripe, -resume and -fault-rate are local-only and cannot combine with -remote"))
		}
		key := *apiKey
		if key == "" {
			key = os.Getenv("PARACRASH_API_KEY")
		}
		os.Exit(runRemote(*remote, key, serve.JobRequest{
			Kind: serve.JobKindExplore,
			FS:   *fsName, Program: *progName, Mode: *mode,
			PFSModel: *pfsModel, LibModel: *libModel,
			K: *k, Workers: *workers, Shards: *shards,
			Clients: *clients, Rows: *rows, Cols: *cols,
			ResizeRows: *rrows, ResizeCols: *rcols,
			Representative: &repOn,
			Incremental:    &incOn,
		}, *jsonOut, *verbose))
	}

	opts := core.DefaultOptions()
	opts.Emulator.K = *k
	opts.Workers = *workers
	opts.DisableRepresentative = !repOn
	opts.DisableIncremental = !incOn
	switch *mode {
	case "brute":
		opts.Mode = core.ModeBrute
	case "pruning":
		opts.Mode = core.ModePruning
	case "optimized":
		opts.Mode = core.ModeOptimized
	default:
		fatalIf(fmt.Errorf("unknown mode %q", *mode))
	}
	opts.PFSModel, err = core.ParseModel(*pfsModel)
	fatalIf(err)
	opts.LibModel, err = core.ParseModel(*libModel)
	fatalIf(err)
	opts.Retry = core.RetryPolicy{MaxAttempts: *retries, Backoff: *retryBackoff}
	if *faultRate > 0 {
		opts.Faults = faultinject.New(faultinject.Config{Seed: *faultSeed, Rate: *faultRate})
	}
	var ckpt *core.Checkpoint
	if *resumePath != "" {
		ckpt = core.OpenCheckpoint(*resumePath)
		opts.Checkpoint = ckpt
	}

	// Observability: one run per invocation, attached only when requested
	// (the nil default keeps the engine's hot paths free of metric work).
	var run *obs.Run
	if *metricsPath != "" || *progress || *progJSONL != "" || *pprofAddr != "" || len(sinkSpecs) > 0 {
		run = obs.NewRun()
		opts.Obs = run
	}
	// Telemetry pipeline: route the run's samples to the requested sinks
	// on the sampling interval (fleet series only — a CLI run is one job).
	// Closed explicitly before reporting, because the bugs-found exit path
	// skips deferred calls.
	closeTelemetry := func() {}
	if len(sinkSpecs) > 0 {
		router := obs.NewRouter()
		router.Attach("", run)
		var closers []func() error
		for _, spec := range sinkSpecs {
			sink, closer, err := obs.ParseSinkSpec(spec)
			fatalIf(err)
			router.AddSink(sink)
			closers = append(closers, closer)
		}
		router.Start(*sinkInterval)
		closeTelemetry = func() {
			router.Close() // final sample + bounded sink drain
			for _, c := range closers {
				_ = c()
			}
		}
	}
	if *progress {
		run.AddSink(&obs.HumanSink{W: os.Stderr})
	}
	if *progJSONL != "" {
		f, err := os.Create(*progJSONL)
		fatalIf(err)
		defer f.Close()
		run.AddSink(obs.NewJSONLSink(f))
	}
	if *progress || *progJSONL != "" {
		run.StartProgress(time.Second)
	}
	if *pprofAddr != "" {
		addr, shutdown, err := obs.Serve(*pprofAddr, run)
		fatalIf(err)
		defer shutdown()
		fmt.Fprintf(os.Stderr, "paracrash: diagnostics at http://%s/debug/pprof/ (also /debug/vars, /debug/obs)\n", addr)
	}

	conf := exps.ConfigFor(*fsName)
	if *servers > 0 {
		if conf.MetaServers > 0 {
			conf.MetaServers = *servers / 2
			conf.StorageServers = *servers - *servers/2
		} else {
			conf.StorageServers = *servers
		}
	}
	if *stripe > 0 {
		conf.StripeSize = *stripe
	}

	h5p := workloads.DefaultH5Params()
	h5p.Clients = *clients
	h5p.Rows, h5p.Cols = *rows, *cols
	h5p.ResizeRows, h5p.ResizeCols = *rrows, *rcols

	if *dumpPath != "" {
		dump, err := exps.TraceJSON(*fsName, prog, h5p, conf)
		fatalIf(err)
		fatalIf(os.WriteFile(*dumpPath, dump, 0o644))
		fmt.Printf("trace written to %s\n", *dumpPath)
		return
	}

	rep, err := exps.RunOne(*fsName, prog, opts, h5p, conf)
	run.Close() // flush the final progress event before reporting
	closeTelemetry()
	fatalIf(err)
	if ckpt != nil {
		fmt.Fprintf(os.Stderr, "paracrash: checkpoint %s: resumed %d verdicts", ckpt.Path(), ckpt.Resumed())
		if w := ckpt.Warnings(); len(w) > 0 {
			fmt.Fprintf(os.Stderr, " (%d warnings)", len(w))
			for _, warn := range w {
				fmt.Fprintf(os.Stderr, "\nparacrash: checkpoint warning: %v", warn)
			}
		}
		fmt.Fprintln(os.Stderr)
	}
	if *metricsPath != "" {
		out, err := run.SummaryJSON()
		fatalIf(err)
		fatalIf(os.WriteFile(*metricsPath, out, 0o644))
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		fatalIf(err)
		fmt.Println(string(out))
		if len(rep.Bugs) > 0 {
			os.Exit(1)
		}
		return
	}

	fmt.Print(rep.Format())
	if *verbose {
		for i, st := range rep.States {
			fmt.Printf("state %d [%s]: victims=%v\n  %s\n", i+1, st.Layer, st.Victims, st.Consequence)
		}
		for i, sk := range rep.Skipped {
			fmt.Printf("skipped %d: victims=%v\n  %s\n", i+1, sk.Victims, sk.Reason)
		}
	}
	if len(rep.Bugs) > 0 {
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracrash:", err)
		os.Exit(2)
	}
}
