package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain doubles the test binary as the CLI when the re-exec marker is
// set, so flag-validation behaviour (stderr output, exit codes) can be
// tested without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("PARACRASH_CLI_UNDER_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-executes the test binary as the paracrash CLI with args and
// returns its exit code and combined stderr.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PARACRASH_CLI_UNDER_TEST=1")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if exitErr, ok := err.(*exec.ExitError); ok {
		code = exitErr.ExitCode()
	} else if err != nil {
		t.Fatalf("running CLI: %v", err)
	}
	return code, stderr.String()
}

// TestCLIFlagValidation checks that every invalid knob reaches stderr
// with a non-zero exit.
func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"negative workers", []string{"-workers", "-1"}, "-workers must be >= 0"},
		{"zero k", []string{"-k", "0"}, "-k must be >= 1"},
		{"negative servers", []string{"-servers", "-4"}, "-servers must be >= 0"},
		{"negative stripe", []string{"-stripe", "-8"}, "-stripe must be >= 0"},
		{"zero clients", []string{"-clients", "0"}, "-clients must be >= 1"},
		{"unknown program", []string{"-program", "NOPE"}, "unknown program"},
		{"unknown mode", []string{"-fs", "ext4", "-program", "CR", "-mode", "bogus"}, "unknown mode"},
		{"unknown model", []string{"-fs", "ext4", "-program", "CR", "-pfs-model", "bogus"}, "unknown"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"positional args", []string{"stray", "args"}, "unexpected arguments"},
		{"remote with local-only flag", []string{"-remote", "localhost:1", "-servers", "8"}, "local-only"},
		{"negative retries", []string{"-retries", "-1"}, "-retries must be >= 0"},
		{"negative retry backoff", []string{"-retry-backoff", "-5ms"}, "-retry-backoff must be >= 0"},
		{"malformed retry backoff", []string{"-retry-backoff", "soon"}, "invalid value"},
		{"fault rate above one", []string{"-fault-rate", "1.5"}, "-fault-rate must be in [0,1]"},
		{"negative fault rate", []string{"-fault-rate", "-0.1"}, "-fault-rate must be in [0,1]"},
		{"malformed fault rate", []string{"-fault-rate", "often"}, "invalid value"},
		{"remote with resume", []string{"-remote", "localhost:1", "-resume", "ckpt.jsonl"}, "local-only"},
		{"remote with fault rate", []string{"-remote", "localhost:1", "-fault-rate", "0.5"}, "local-only"},
		{"representative conflict", []string{"-representative=true", "-no-representative"}, "-representative=true conflicts with -no-representative"},
		{"bad sink spec", []string{"-sink", "bogus"}, "unknown sink spec"},
		{"bad sink jsonl path", []string{"-sink", "jsonl:"}, "unknown sink spec"},
		{"bad sink push scheme", []string{"-sink", "push:ftp://x"}, "unknown sink spec"},
		{"zero sink interval", []string{"-fs", "ext4", "-program", "CR", "-sink", "stdout", "-sink-interval", "0s"}, "-sink-interval must be > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("exit code 0, want non-zero; stderr: %s", stderr)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.wantMsg)
			}
		})
	}
}

// TestCLICleanRun keeps the zero-exit path honest: a valid local run on
// the clean ext4/CR cell exits 0, with representative exploration on
// (the default), forced off, and off via the alias.
func TestCLICleanRun(t *testing.T) {
	for _, extra := range [][]string{nil, {"-no-representative"}, {"-representative=false"}} {
		args := append([]string{"-fs", "ext4", "-program", "CR"}, extra...)
		code, stderr := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit code %d, want 0; stderr: %s", args, code, stderr)
		}
	}
}

// TestCLISinkJSONL runs a clean cell with a jsonl metric sink attached and
// verifies the file holds JSON-array batches carrying the run's counters —
// the router's final flush guarantees at least one batch however fast the
// run is.
func TestCLISinkJSONL(t *testing.T) {
	path := t.TempDir() + "/metrics.jsonl"
	code, stderr := runCLI(t, "-fs", "ext4", "-program", "CR", "-sink", "jsonl:"+path)
	if code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("sink file missing: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("sink file empty")
	}
	var batch []struct {
		Name  string  `json:"name"`
		Kind  string  `json:"kind"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &batch); err != nil {
		t.Fatalf("final batch not a JSON array: %v\n%s", err, lines[len(lines)-1])
	}
	found := false
	for _, m := range batch {
		if m.Name == "states/checked" && m.Kind == "counter" && m.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("final batch missing states/checked counter: %s", lines[len(lines)-1])
	}
}

// TestCLIResumeAndFaults runs the same cell twice against one checkpoint
// journal with faults armed: both runs exit 0 and the second reports the
// verdicts it resumed.
func TestCLIResumeAndFaults(t *testing.T) {
	ckpt := t.TempDir() + "/ckpt.jsonl"
	args := []string{"-fs", "ext4", "-program", "CR",
		"-resume", ckpt, "-fault-rate", "0.3", "-fault-seed", "7", "-retries", "4"}
	code, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("first run exit code %d; stderr: %s", code, stderr)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("first run left no checkpoint journal: %v", err)
	}
	code, stderr = runCLI(t, args...)
	if code != 0 {
		t.Fatalf("second run exit code %d; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "resumed") || strings.Contains(stderr, "resumed 0 verdicts") {
		t.Fatalf("second run did not report resumed verdicts; stderr: %s", stderr)
	}
}
