package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"paracrash/internal/serve"
)

// doRequest issues one HTTP request against the daemon, attaching the
// tenant API key (if any) as an X-API-Key header.
func doRequest(method, url, apiKey string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	return http.DefaultClient.Do(req)
}

// runRemote submits the request to a paracrashd instance, streams the
// job's progress events to stderr, and prints the finished job's report —
// the same output a local run would give. Returns the process exit code.
func runRemote(addr, apiKey string, req serve.JobRequest, jsonOut, verbose bool) int {
	base := "http://" + addr
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracrash:", err)
		return 2
	}
	resp, err := doRequest(http.MethodPost, base+"/v1/jobs", apiKey, bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracrash: submit:", err)
		return 2
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "paracrash: submit: %s: %s", resp.Status, msg)
		return 2
	}
	var job serve.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		fmt.Fprintln(os.Stderr, "paracrash: submit response:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "paracrash: submitted job %s to %s\n", job.ID, addr)

	streamEvents(base, apiKey, job.ID)

	job, ok := waitTerminal(base, apiKey, job.ID)
	if !ok {
		return 2
	}
	switch job.State {
	case serve.JobDone:
	case serve.JobCanceled:
		fmt.Fprintf(os.Stderr, "paracrash: job %s canceled: %s\n", job.ID, job.Error)
		return 2
	default:
		fmt.Fprintf(os.Stderr, "paracrash: job %s failed: %s\n", job.ID, job.Error)
		return 2
	}

	if job.Fuzz != nil {
		fmt.Print(job.Fuzz.Summary)
		if !job.Fuzz.OK {
			return 1
		}
		return 0
	}
	rep := job.Report
	if rep == nil {
		fmt.Fprintf(os.Stderr, "paracrash: job %s finished without a report\n", job.ID)
		return 2
	}
	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "paracrash:", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Format())
		if verbose {
			for i, st := range rep.States {
				fmt.Printf("state %d [%s]: victims=%v\n  %s\n", i+1, st.Layer, st.Victims, st.Consequence)
			}
		}
	}
	if len(rep.Bugs) > 0 {
		return 1
	}
	return 0
}

// streamEvents relays the job's NDJSON progress stream to stderr until the
// daemon closes it (the job reached a terminal state). Stream errors are
// non-fatal: the result poll below is the source of truth.
func streamEvents(base, apiKey, id string) {
	resp, err := doRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", apiKey, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracrash: event stream:", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fmt.Fprintf(os.Stderr, "paracrash: %s\n", sc.Bytes())
	}
}

// waitTerminal polls the job until it reaches a terminal state.
func waitTerminal(base, apiKey, id string) (serve.Job, bool) {
	for {
		resp, err := doRequest(http.MethodGet, base+"/v1/jobs/"+id, apiKey, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paracrash: poll:", err)
			return serve.Job{}, false
		}
		var job serve.Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paracrash: poll:", err)
			return serve.Job{}, false
		}
		if job.State.Terminal() {
			return job, true
		}
		time.Sleep(250 * time.Millisecond)
	}
}
