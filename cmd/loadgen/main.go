// Command loadgen storms a running paracrashd with concurrent jobs and
// reports throughput and latency percentiles — the proving harness for the
// multi-tenant fleet: point it at a coordinator with -keys and it drives
// every tenant's quota, rate limit and priority class at once.
//
// Usage:
//
//	paracrashd -addr localhost:7077 -results ./results &
//	loadgen -addr localhost:7077 -jobs 1000 -concurrency 64
//	loadgen -addr localhost:7077 -jobs 200 -keys alice-key,bob-key -json
//
// 429 pushback (queue full, rate limited, over quota) is retried with
// backoff and counted, so the report measures sustainable throughput under
// the daemon's own admission control rather than failing on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"paracrash/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:7077", "paracrashd address")
		jobs        = flag.Int("jobs", 100, "total jobs to submit")
		concurrency = flag.Int("concurrency", 8, "concurrent client goroutines")
		keys        = flag.String("keys", "", "comma-separated tenant API keys to rotate through (empty = open mode)")
		fsName      = flag.String("fs", "beegfs", "file system backend for the job template")
		progName    = flag.String("program", "CR", "test program for the job template")
		mode        = flag.String("mode", "pruning", "exploration mode for the job template")
		shards      = flag.Int("shards", 0, "shard count to request per job (0 = daemon default)")
		poll        = flag.Duration("poll", 100*time.Millisecond, "terminal-state poll cadence")
		timeout     = flag.Duration("timeout", 10*time.Minute, "bound on the whole run (0 = none)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var keyList []string
	if *keys != "" {
		for _, k := range strings.Split(*keys, ",") {
			if k = strings.TrimSpace(k); k != "" {
				keyList = append(keyList, k)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := serve.RunLoad(ctx, serve.LoadGenConfig{
		BaseURL:     "http://" + *addr,
		Keys:        keyList,
		Jobs:        *jobs,
		Concurrency: *concurrency,
		Request: serve.JobRequest{
			Kind: serve.JobKindExplore,
			FS:   *fsName, Program: *progName, Mode: *mode,
			Shards: *shards,
		},
		PollInterval: *poll,
		Timeout:      *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
	}
	if *jsonOut {
		out, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", merr)
			os.Exit(2)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Format())
	}
	if err != nil || rep.Errors > 0 {
		os.Exit(1)
	}
}
