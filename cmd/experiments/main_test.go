package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain doubles the test binary as the CLI when the re-exec marker is
// set, so flag-validation behaviour (stderr output, exit codes) can be
// tested without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("PARACRASH_CLI_UNDER_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-executes the test binary as the experiments CLI with args and
// returns its exit code and combined stderr.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PARACRASH_CLI_UNDER_TEST=1")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if exitErr, ok := err.(*exec.ExitError); ok {
		code = exitErr.ExitCode()
	} else if err != nil {
		t.Fatalf("running CLI: %v", err)
	}
	return code, stderr.String()
}

func TestParseServerCounts(t *testing.T) {
	good := map[string][]int{
		"4":          {4},
		"4,6,8":      {4, 6, 8},
		" 4 , 16 ":   {4, 16},
		"2,32,2,100": {2, 32, 2, 100},
	}
	for in, want := range good {
		got, err := parseServerCounts(in)
		if err != nil {
			t.Errorf("parseServerCounts(%q): unexpected error %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("parseServerCounts(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parseServerCounts(%q) = %v, want %v", in, got, want)
			}
		}
	}
	bad := []string{"", "4,", ",4", "4,bogus", "abc", "4,1", "0", "-3", "4,6,one"}
	for _, in := range bad {
		if got, err := parseServerCounts(in); err == nil {
			t.Errorf("parseServerCounts(%q) = %v, want error", in, got)
		}
	}
}

// TestCLIFlagValidation checks that invalid flags reach stderr with a
// non-zero exit instead of being silently dropped (fig11's -servers used
// to skip malformed counts without a word).
func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"bad fig11 servers", []string{"-exp", "fig11", "-servers", "4,bogus"}, "bad server count"},
		{"fig11 servers below range", []string{"-exp", "fig11", "-servers", "4,1"}, "out of range"},
		{"unknown experiment", []string{"-exp", "nope"}, "unknown experiment"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"positional args", []string{"-exp", "fig5", "stray"}, "unexpected arguments"},
		{"negative seeds", []string{"-exp", "fuzz", "-seeds", "-1"}, "-seeds must be >= 0"},
		{"negative enum-ops", []string{"-exp", "fuzz", "-enum-ops", "-2"}, "-enum-ops must be >= 0"},
		{"negative retries", []string{"-exp", "fuzz", "-retries", "-1"}, "-retries must be >= 0"},
		{"negative retry backoff", []string{"-exp", "fuzz", "-retry-backoff", "-1ms"}, "-retry-backoff must be >= 0"},
		{"malformed retry backoff", []string{"-exp", "fuzz", "-retry-backoff", "soon"}, "invalid value"},
		{"fault rate above one", []string{"-exp", "fuzz", "-fault-rate", "2"}, "-fault-rate must be in [0,1]"},
		{"negative fault rate", []string{"-exp", "fuzz", "-fault-rate", "-0.5"}, "-fault-rate must be in [0,1]"},
		{"representative conflict", []string{"-exp", "fig5", "-representative=true", "-no-representative"}, "-representative=true conflicts with -no-representative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("exit code 0, want non-zero; stderr: %s", stderr)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.wantMsg)
			}
		})
	}
}
