// Command experiments regenerates the paper's evaluation tables and
// figures (§6) from the simulated stack.
//
// Usage:
//
//	experiments -exp fig8       # inconsistent crash states per program × FS
//	experiments -exp fig9       # ARVR traces across file systems (Fig 2/9)
//	experiments -exp fig10      # brute vs pruning vs optimized timing
//	experiments -exp fig11      # scalability with server count
//	experiments -exp fig5       # consistency-model demonstration
//	experiments -exp table3     # the aggregated bug list
//	experiments -exp sensitivity # the Table 3 sensitivity studies
//	experiments -exp speedups   # §6.4 headline numbers on ARVR/BeeGFS
//	experiments -exp parallel   # worker-pool engine vs serial wall clock
//	experiments -exp bench      # benchmark trajectory -> BENCH_*.json
//	experiments -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paracrash/internal/exps"
	core "paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5, fig8, fig9, fig10, fig11, table3, sensitivity, speedups, parallel, bench, all")
	servers := flag.String("servers", "4,6,8,16,32", "server counts for fig11")
	benchOut := flag.String("bench-out", "", "bench: write the BENCH_*.json summary to this file (default stdout)")
	flag.Parse()

	h5p := workloads.DefaultH5Params()
	run := func(name string) {
		switch name {
		case "fig5":
			fmt.Println(exps.Fig5())
		case "fig8":
			res := exps.Fig8(core.DefaultOptions(), h5p)
			fmt.Println(res.Format())
		case "fig9":
			fmt.Println(exps.Fig9(h5p))
		case "fig10":
			fmt.Println(exps.FormatFig10(exps.Fig10(h5p)))
		case "fig11":
			var counts []int
			for _, s := range strings.Split(*servers, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err == nil && n > 1 {
					counts = append(counts, n)
				}
			}
			fmt.Println(exps.FormatFig11(exps.Fig11(counts, h5p)))
		case "table3":
			fmt.Println(exps.FormatTable3(exps.Table3(core.DefaultOptions(), h5p)))
		case "sensitivity":
			fmt.Println(exps.Sensitivity())
		case "speedups":
			res, err := exps.Speedups("beegfs", "ARVR", h5p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println("§6.4 exploration speedups (ARVR on BeeGFS):")
			fmt.Printf("  brute-force: %4d states checked, %d server restores, %.4fs (%d bugs)\n",
				res.BruteStates, res.BruteRestores, res.BruteSeconds, res.BruteBugs)
			fmt.Printf("  pruning:     %4d states checked, %.4fs (%d bugs)\n",
				res.PrunedStates, res.PrunedSeconds, res.PrunedBugs)
			fmt.Printf("  optimized:   %d server restores, %.4fs (%d bugs)\n",
				res.OptRestores, res.OptimizedSeconds, res.OptBug)
			if res.PrunedStates > 0 {
				fmt.Printf("  state reduction: %.1fx; restore reduction: %.1fx\n",
					float64(res.BruteStates)/float64(res.PrunedStates),
					float64(res.BruteRestores)/float64(maxInt(res.OptRestores, 1)))
			}
		case "parallel":
			res, err := exps.ParallelSpeedup("beegfs", "ARVR", h5p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println("parallel exploration (brute-force ARVR on BeeGFS):")
			fmt.Printf("  serial   (workers=1):  %.4fs\n", res.SerialSeconds)
			fmt.Printf("  parallel (workers=%d): %.4fs  (%.1fx speedup)\n", res.Workers, res.ParallelSeconds, res.Speedup)
			fmt.Printf("  states checked: %d, bugs: %d, reports identical: %v\n", res.States, res.Bugs, res.Identical)
		case "bench":
			sum := exps.Bench(h5p)
			out, err := sum.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if *benchOut == "" {
				fmt.Println(string(out))
				break
			}
			if err := os.WriteFile(*benchOut, out, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Printf("benchmark summary written to %s (%d records)\n", *benchOut, len(sum.Records))
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"fig5", "fig8", "fig9", "fig10", "fig11", "table3", "sensitivity", "speedups", "parallel", "bench"} {
			fmt.Printf("################ %s ################\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
