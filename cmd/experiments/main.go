// Command experiments regenerates the paper's evaluation tables and
// figures (§6) from the simulated stack.
//
// Usage:
//
//	experiments -exp fig8       # inconsistent crash states per program × FS
//	experiments -exp fig9       # ARVR traces across file systems (Fig 2/9)
//	experiments -exp fig10      # brute vs pruning vs optimized timing
//	experiments -exp fig11      # scalability with server count
//	experiments -exp fig5       # consistency-model demonstration
//	experiments -exp table3     # the aggregated bug list
//	experiments -exp sensitivity # the Table 3 sensitivity studies
//	experiments -exp speedups   # §6.4 headline numbers on ARVR/BeeGFS
//	experiments -exp parallel   # worker-pool engine vs serial wall clock
//	experiments -exp bench      # benchmark trajectory -> BENCH_*.json
//	experiments -exp fuzz       # metamorphic fuzz campaign over the engine
//	experiments -exp all        # every experiment above except fuzz
//
// The fuzz campaign is a correctness gate rather than a paper artifact, so
// "all" does not include it; run it explicitly:
//
//	experiments -exp fuzz -seeds 64 -fuzz-out corpus/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/fuzzcamp"
	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
	"paracrash/internal/serve"
	"paracrash/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5, fig8, fig9, fig10, fig11, table3, sensitivity, speedups, parallel, bench, fuzz, all")
	servers := flag.String("servers", "4,6,8,16,32", "server counts for fig11")
	benchOut := flag.String("bench-out", "", "bench: write the BENCH_*.json summary to this file (default stdout)")
	benchCells := flag.String("bench-cells", "all", "bench: cell subset to run: all, or fast (the quick benchgate set)")
	var sinkSpecs obs.SinkSpecList
	flag.Var(&sinkSpecs, "sink", "bench: attach a telemetry sink for per-cell metrics (repeatable): stdout, stderr, jsonl:PATH, push:URL")
	fuzzSeeds := flag.Int("seeds", 64, "fuzz: number of generated workload seeds")
	fuzzSeedStart := flag.Int64("seed-start", 0, "fuzz: first generator seed")
	fuzzEnumOps := flag.Int("enum-ops", 2, "fuzz: also enumerate all op sequences up to this length (0 = off)")
	fuzzOut := flag.String("fuzz-out", "", "fuzz: directory for minimized reproducer corpus files")
	fuzzTime := flag.Duration("fuzz-time", 0, "fuzz: wall-clock budget, e.g. 30s (0 = no limit)")
	fuzzBackends := flag.String("fuzz-backends", "", "fuzz: comma-separated backends (default: all six)")
	fuzzProgress := flag.Bool("progress", false, "fuzz: stream live progress to stderr")
	fuzzRetries := flag.Int("retries", 0, "fuzz: max attempts per crash-state check before quarantining it (0 = default 3)")
	fuzzBackoff := flag.Duration("retry-backoff", 0, "fuzz: base backoff between check retries (0 = default 2ms)")
	fuzzFaultSeed := flag.Int64("fault-seed", 0, "fuzz: fault-injection seed (with -fault-rate)")
	fuzzFaultRate := flag.Float64("fault-rate", 0, "fuzz: inject faults into the engine's own I/O with this probability in [0,1] (0 = off)")
	representative := flag.Bool("representative", true, "group crash states into recovered-content equivalence classes and check one representative per class")
	noRep := flag.Bool("no-representative", false, "check every crash state brute-force-equivalently (same as -representative=false)")
	incremental := flag.Bool("incremental", true, "reconstruct crash states in O(delta) via cached prefix-root restores and delta replay")
	noInc := flag.Bool("no-incremental", false, "rebuild every crash state with a full restore and replay (same as -incremental=false)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}
	if *fuzzSeeds < 0 {
		fatal(fmt.Errorf("-seeds must be >= 0, got %d", *fuzzSeeds))
	}
	if *fuzzEnumOps < 0 {
		fatal(fmt.Errorf("-enum-ops must be >= 0, got %d", *fuzzEnumOps))
	}
	if *fuzzRetries < 0 {
		fatal(fmt.Errorf("-retries must be >= 0 (0 = default), got %d", *fuzzRetries))
	}
	if *fuzzBackoff < 0 {
		fatal(fmt.Errorf("-retry-backoff must be >= 0 (0 = default), got %v", *fuzzBackoff))
	}
	if *fuzzFaultRate < 0 || *fuzzFaultRate > 1 {
		fatal(fmt.Errorf("-fault-rate must be in [0,1], got %g", *fuzzFaultRate))
	}
	repSet, incSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "representative":
			repSet = true
		case "incremental":
			incSet = true
		}
	})
	if repSet && *representative && *noRep {
		fatal(fmt.Errorf("-representative=true conflicts with -no-representative"))
	}
	if incSet && *incremental && *noInc {
		fatal(fmt.Errorf("-incremental=true conflicts with -no-incremental"))
	}
	// opts carries the knobs into the option-taking experiments; the §6.4
	// speedups contrast pins its own settings to measure the paper's
	// strategies in isolation.
	opts := core.DefaultOptions()
	opts.DisableRepresentative = *noRep || !*representative
	opts.DisableIncremental = *noInc || !*incremental

	h5p := workloads.DefaultH5Params()
	run := func(name string) {
		switch name {
		case "fig5":
			fmt.Println(exps.Fig5())
		case "fig8":
			res := exps.Fig8(opts, h5p)
			fmt.Println(res.Format())
		case "fig9":
			fmt.Println(exps.Fig9(h5p))
		case "fig10":
			fmt.Println(exps.FormatFig10(exps.Fig10(h5p)))
		case "fig11":
			counts, err := parseServerCounts(*servers)
			if err != nil {
				fatal(fmt.Errorf("-servers: %w", err))
			}
			fmt.Println(exps.FormatFig11(exps.Fig11(counts, h5p)))
		case "table3":
			fmt.Println(exps.FormatTable3(exps.Table3(opts, h5p)))
		case "sensitivity":
			fmt.Println(exps.Sensitivity())
		case "speedups":
			res, err := exps.Speedups("beegfs", "ARVR", h5p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println("§6.4 exploration speedups (ARVR on BeeGFS):")
			fmt.Printf("  brute-force: %4d states checked, %d server restores, %.4fs (%d bugs)\n",
				res.BruteStates, res.BruteRestores, res.BruteSeconds, res.BruteBugs)
			fmt.Printf("  pruning:     %4d states checked, %.4fs (%d bugs)\n",
				res.PrunedStates, res.PrunedSeconds, res.PrunedBugs)
			fmt.Printf("  optimized:   %d server restores, %.4fs (%d bugs)\n",
				res.OptRestores, res.OptimizedSeconds, res.OptBug)
			if res.PrunedStates > 0 {
				fmt.Printf("  state reduction: %.1fx; restore reduction: %.1fx\n",
					float64(res.BruteStates)/float64(res.PrunedStates),
					float64(res.BruteRestores)/float64(maxInt(res.OptRestores, 1)))
			}
		case "parallel":
			res, err := exps.ParallelSpeedup("beegfs", "ARVR", h5p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println("parallel exploration (brute-force ARVR on BeeGFS):")
			fmt.Printf("  serial   (workers=1):  %.4fs\n", res.SerialSeconds)
			fmt.Printf("  parallel (workers=%d): %.4fs  (%.1fx speedup)\n", res.Workers, res.ParallelSeconds, res.Speedup)
			fmt.Printf("  states checked: %d, bugs: %d, reports identical: %v\n", res.States, res.Bugs, res.Identical)
		case "bench":
			sinks, closers, err := parseSinks(sinkSpecs)
			if err != nil {
				fatal(err)
			}
			sum, err := exps.BenchCells(h5p, *benchCells, sinks...)
			for _, c := range closers {
				_ = c()
			}
			if err != nil {
				fatal(err)
			}
			// The fleet cell: coordinator + workers + tenants stormed through
			// the HTTP API by the load generator. The fast subset keeps the
			// storm small so `make benchgate` stays quick.
			fleetCfg := serve.FleetBenchConfig{Workers: 3, Tenants: 2, Shards: 2, Jobs: 24, Concurrency: 8}
			if *benchCells == "fast" {
				fleetCfg.Jobs, fleetCfg.Concurrency = 12, 6
			}
			sum.Fleet, err = serve.BenchFleet(context.Background(), fleetCfg)
			if err != nil {
				fatal(err)
			}
			out, err := sum.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if *benchOut == "" {
				fmt.Println(string(out))
				break
			}
			if err := os.WriteFile(*benchOut, out, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Printf("benchmark summary written to %s (%d records)\n", *benchOut, len(sum.Records))
		case "fuzz":
			var backends []string
			for _, b := range strings.Split(*fuzzBackends, ",") {
				if b = strings.TrimSpace(b); b != "" {
					backends = append(backends, b)
				}
			}
			var orun *obs.Run
			if *fuzzProgress {
				orun = obs.NewRun()
				orun.AddSink(&obs.HumanSink{W: os.Stderr})
				orun.StartProgress(time.Second)
			}
			res, err := fuzzcamp.Run(fuzzcamp.Config{
				Backends:   backends,
				SeedStart:  *fuzzSeedStart,
				Seeds:      *fuzzSeeds,
				EnumOps:    *fuzzEnumOps,
				TimeBudget: *fuzzTime,
				CorpusDir:  *fuzzOut,
				Obs:        orun,
				Retry:      core.RetryPolicy{MaxAttempts: *fuzzRetries, Backoff: *fuzzBackoff},
				FaultSeed:  *fuzzFaultSeed,
				FaultRate:  *fuzzFaultRate,

				DisableRepresentative: opts.DisableRepresentative,
			})
			if orun != nil {
				orun.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Print(res.Format())
			if !res.OK() {
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"fig5", "fig8", "fig9", "fig10", "fig11", "table3", "sensitivity", "speedups", "parallel", "bench"} {
			fmt.Printf("################ %s ################\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// parseSinks resolves -sink specs into live sinks plus their closers. An
// error from any spec closes the sinks already opened so a bad third spec
// does not leak the first two files.
func parseSinks(specs obs.SinkSpecList) ([]obs.MetricSink, []func() error, error) {
	var sinks []obs.MetricSink
	var closers []func() error
	for _, spec := range specs {
		sink, closer, err := obs.ParseSinkSpec(spec)
		if err != nil {
			for _, c := range closers {
				_ = c()
			}
			return nil, nil, err
		}
		sinks = append(sinks, sink)
		closers = append(closers, closer)
	}
	return sinks, closers, nil
}

// parseServerCounts parses fig11's comma-separated server counts. Every
// field must be an integer >= 2 (the clusters need more than one
// server); a malformed field is an error rather than a silent skip.
func parseServerCounts(s string) ([]int, error) {
	var counts []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("empty server count in %q", s)
		}
		n, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("bad server count %q (want an integer >= 2)", field)
		}
		if n < 2 {
			return nil, fmt.Errorf("server count %d out of range (want >= 2)", n)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// fatal prints a flag-validation or runtime error to stderr and exits
// non-zero, matching the other CLIs' behaviour.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
