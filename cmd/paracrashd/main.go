// Command paracrashd runs the ParaCrash checker as a service: an HTTP API
// accepting exploration and fuzz-campaign jobs, a bounded scheduler
// executing them with per-job timeouts and cancellation, and a results
// directory where completed jobs persist as versioned JSON across
// restarts.
//
// Usage:
//
//	paracrashd -addr localhost:7077 -results ./results
//	curl -X POST localhost:7077/v1/jobs -d '{"fs":"beegfs","program":"ARVR"}'
//	curl localhost:7077/v1/jobs/<id>
//	curl -N localhost:7077/v1/jobs/<id>/events
//	curl localhost:7077/metrics
//
// On SIGINT/SIGTERM the daemon drains: new submissions are rejected with
// 503 while in-flight jobs run to completion (bounded by -drain-timeout,
// after which they are cancelled), then the process exits.
//
// Every start runs a repairing fsck over the results directory before the
// store loads, so an unclean death (the very failure this tool studies)
// never leaves the daemon serving torn state: reconstructible debris is
// repaired, anything else is quarantined — reflected on /healthz, failed
// on /readyz. The same check runs standalone:
//
//	paracrashd -fsck -results ./results           # read-only scan, JSON report
//	paracrashd -fsck -repair -results ./results   # apply repairs/quarantines
//
// Fleet mode splits the daemon into roles sharing one results directory
// (any shared file system works — no RPC fabric needed):
//
//	paracrashd -role coordinator -results /pfs/results -shards 4
//	paracrashd -role worker -results /pfs/results -worker-id w1
//	paracrashd -role worker -results /pfs/results -worker-id w2
//
// The coordinator partitions explore jobs into shards; workers claim
// shards via leases, judge them (journaling verdicts so a dead worker's
// shard resumes where it stopped), and the coordinator merges the results
// into the byte-identical standalone report. -tenants arms multi-tenant
// authentication, quotas, rate limits and priority scheduling; see
// docs/OPERATIONS.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paracrash/internal/obs"
	"paracrash/internal/serve"
	"paracrash/internal/statefs"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:7077", "HTTP listen address")
		resultsDir   = flag.String("results", "", "directory for persisted job results (empty = in-memory only)")
		maxJobs      = flag.Int("max-jobs", 2, "jobs running concurrently")
		queueDepth   = flag.Int("queue-depth", 16, "queued jobs before submissions get 429")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job timeout (0 = none)")
		maxTimeout   = flag.Duration("max-job-timeout", time.Hour, "cap on any job's timeout (0 = no cap)")
		maxWorkers   = flag.Int("max-job-workers", 0, "cap on one job's exploration workers (0 = no cap)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs before cancelling them")
		sinkInterval = flag.Duration("sink-interval", 10*time.Second, "telemetry sampling interval for -sink fan-out")

		role      = flag.String("role", "standalone", "process role: standalone, coordinator (shard explore jobs across workers) or worker (claim and judge shards)")
		shards    = flag.Int("shards", 0, "coordinator: default shard count per explore job (a job may request its own; < 2 runs in-process)")
		maxShards = flag.Int("max-shards", 16, "coordinator: cap on any job's requested shard count")
		fleetPoll = flag.Duration("fleet-poll", 0, "fleet poll cadence: coordinator result scan / worker task scan (0 = role default)")
		leaseTTL  = flag.Duration("lease-ttl", 3*time.Second, "worker: shard lease time-to-live; a dead worker's shard is reclaimed after at most this long")
		heartbeat = flag.Duration("heartbeat", 0, "worker: lease renewal cadence (0 = lease-ttl/3)")
		workerID  = flag.String("worker-id", "", "worker: identity in leases and shard results (default worker-<pid>)")

		tenantsPath = flag.String("tenants", "", "tenant configuration file (JSON); arms API keys, quotas, rate limits and priority scheduling")

		fsckOnly = flag.Bool("fsck", false, "check the -results state directory for crash damage, print the JSON report and exit (0 clean, 1 problems); no daemon is started")
		repair   = flag.Bool("repair", false, "with -fsck: apply repairs and quarantines instead of a read-only scan")
	)
	var sinkSpecs obs.SinkSpecList
	flag.Var(&sinkSpecs, "sink", "attach a telemetry sink (repeatable): stdout, stderr, jsonl:PATH, push:URL")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "paracrashd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *maxJobs < 1 || *queueDepth < 1 {
		fatalf("-max-jobs and -queue-depth must be >= 1 (got %d, %d)", *maxJobs, *queueDepth)
	}
	if *jobTimeout < 0 || *maxTimeout < 0 || *drainTimeout < 0 {
		fatalf("timeouts must be >= 0")
	}
	if len(sinkSpecs) > 0 && *sinkInterval <= 0 {
		fatalf("-sink-interval must be > 0 when sinks are attached, got %v", *sinkInterval)
	}
	if *shards < 0 || *maxShards < 1 {
		fatalf("-shards must be >= 0 and -max-shards >= 1 (got %d, %d)", *shards, *maxShards)
	}
	if *leaseTTL <= 0 || *heartbeat < 0 || *fleetPoll < 0 {
		fatalf("-lease-ttl must be > 0; -heartbeat and -fleet-poll must be >= 0")
	}
	if *repair && !*fsckOnly {
		fatalf("-repair only applies with -fsck (the daemon always repairs on startup)")
	}

	// One-shot fsck mode: scan (and with -repair, fix) the state directory,
	// print the machine-readable report and exit without starting a daemon.
	if *fsckOnly {
		if *resultsDir == "" {
			fatalf("-fsck requires -results (the state directory to check)")
		}
		rep, err := serve.Fsck(*resultsDir, serve.FsckOptions{Repair: *repair})
		if err != nil {
			fatalf("%v", err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(data))
		fmt.Fprintln(os.Stderr, "paracrashd:", rep.Summary())
		if !rep.Clean {
			os.Exit(1)
		}
		return
	}

	if *role == "worker" {
		runWorker(*resultsDir, *workerID, *leaseTTL, *heartbeat, *fleetPoll, sinkSpecs, *sinkInterval)
		return
	}
	if *role != "standalone" && *role != "coordinator" {
		fatalf("unknown -role %q (want standalone, coordinator or worker)", *role)
	}

	var tenants *serve.Tenants
	if *tenantsPath != "" {
		var terr error
		tenants, terr = serve.LoadTenants(*tenantsPath)
		if terr != nil {
			fatalf("%v", terr)
		}
		fmt.Fprintf(os.Stderr, "paracrashd: multi-tenancy on (%d tenants)\n", len(tenants.Names()))
	}

	run := obs.NewRun()
	statefs.SetObs(run)
	run.Gauge("statefs/crash-points").Set(int64(len(statefs.CrashPoints())))

	// Recover the state directory before the store reads it: remove or
	// quarantine whatever an unclean death left behind, so the daemon never
	// builds its world view on torn records. Quarantines degrade /readyz.
	var fsckReport *serve.FsckReport
	if *resultsDir != "" {
		var ferr error
		fsckReport, ferr = serve.Fsck(*resultsDir, serve.FsckOptions{Repair: true})
		if ferr != nil {
			fatalf("startup fsck: %v", ferr)
		}
		fmt.Fprintln(os.Stderr, "paracrashd:", fsckReport.Summary())
		run.Counter("fsck/problems").Add(int64(len(fsckReport.Problems)))
		run.Counter("fsck/repaired").Add(int64(fsckReport.Repaired))
		run.Counter("fsck/quarantined").Add(int64(fsckReport.Quarantined))
	}

	store, warns := serve.OpenStore(*resultsDir)
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, "paracrashd: warning:", w)
	}

	cfg := serve.SchedulerConfig{
		MaxConcurrent:  *maxJobs,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		MaxJobWorkers:  *maxWorkers,
		Tenants:        tenants,
	}
	if *role == "coordinator" {
		if *resultsDir == "" {
			fatalf("-role coordinator requires -results (the shared fleet directory)")
		}
		cfg.Fleet = &serve.FleetConfig{Shards: *shards, MaxShards: *maxShards, Poll: *fleetPoll}
	}

	sched := serve.NewScheduler(cfg, store, run)

	// Telemetry fan-out: the scheduler's router already aggregates the
	// daemon run and every live job; -sink attaches push-style outputs and
	// starts the sampling loop (the pull-style /metrics endpoint needs
	// neither).
	router := sched.Router()
	for _, spec := range sinkSpecs {
		sink, closer, err := obs.ParseSinkSpec(spec)
		if err != nil {
			fatalf("%v", err)
		}
		router.AddSink(sink)
		defer func() { _ = closer() }()
	}
	if len(sinkSpecs) > 0 {
		router.Start(*sinkInterval)
	}
	defer router.Close()

	sched.Start()

	// Re-enqueue jobs a previous daemon left queued or running: explore jobs
	// resume from their checkpoint journal, others restart from scratch.
	for _, j := range store.Interrupted() {
		if err := sched.Resubmit(j.ID); err != nil {
			fmt.Fprintf(os.Stderr, "paracrashd: warning: resubmit interrupted job %s: %v\n", j.ID, err)
		} else {
			fmt.Fprintf(os.Stderr, "paracrashd: resubmitted interrupted job %s (%s)\n", j.ID, j.Request.Kind)
		}
	}

	api := serve.NewServer(sched, store, run)
	api.SetFsck(fsckReport)
	srv := &http.Server{Addr: *addr, Handler: api}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	loaded := len(store.List())
	fmt.Fprintf(os.Stderr, "paracrashd: %s listening on %s (results=%q, %d persisted jobs loaded, %d slots, queue %d, /metrics exposed)\n",
		*role, *addr, *resultsDir, loaded, *maxJobs, *queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "paracrashd: %v: draining (up to %v)\n", sig, *drainTimeout)
	case err := <-errc:
		fatalf("serve: %v", err)
	}

	// Drain first — the HTTP listener stays up so status queries and event
	// streams keep working while in-flight jobs finish — then shut down.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sched.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "paracrashd: drain expired, in-flight jobs cancelled: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "paracrashd: stopped")
}

// runWorker is the -role worker main loop: claim shard leases in the
// shared directory, judge shards, write results, until SIGINT/SIGTERM.
func runWorker(dir, id string, leaseTTL, heartbeat, poll time.Duration, sinkSpecs obs.SinkSpecList, sinkInterval time.Duration) {
	if dir == "" {
		fatalf("-role worker requires -results (the shared fleet directory)")
	}
	run := obs.NewRun()
	statefs.SetObs(run)
	w, err := serve.NewFleetWorker(serve.FleetWorkerConfig{
		Dir: dir, ID: id,
		LeaseTTL: leaseTTL, Heartbeat: heartbeat, Poll: poll,
		Obs: run,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if len(sinkSpecs) > 0 {
		router := obs.NewRouter()
		router.Attach("", run)
		for _, spec := range sinkSpecs {
			sink, closer, err := obs.ParseSinkSpec(spec)
			if err != nil {
				fatalf("%v", err)
			}
			router.AddSink(sink)
			defer func() { _ = closer() }()
		}
		router.Start(sinkInterval)
		defer router.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "paracrashd: worker %s scanning %s (lease-ttl %v)\n", w.ID(), dir, leaseTTL)
	_ = w.Run(ctx)
	// A signal cancels the loop mid-shard at worst: the lease is released (or
	// expires) and another worker resumes the shard from its journal.
	fmt.Fprintf(os.Stderr, "paracrashd: worker %s stopped\n", w.ID())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paracrashd: "+format+"\n", args...)
	os.Exit(2)
}
