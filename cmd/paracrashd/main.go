// Command paracrashd runs the ParaCrash checker as a service: an HTTP API
// accepting exploration and fuzz-campaign jobs, a bounded scheduler
// executing them with per-job timeouts and cancellation, and a results
// directory where completed jobs persist as versioned JSON across
// restarts.
//
// Usage:
//
//	paracrashd -addr localhost:7077 -results ./results
//	curl -X POST localhost:7077/v1/jobs -d '{"fs":"beegfs","program":"ARVR"}'
//	curl localhost:7077/v1/jobs/<id>
//	curl -N localhost:7077/v1/jobs/<id>/events
//	curl localhost:7077/metrics
//
// On SIGINT/SIGTERM the daemon drains: new submissions are rejected with
// 503 while in-flight jobs run to completion (bounded by -drain-timeout,
// after which they are cancelled), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paracrash/internal/obs"
	"paracrash/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:7077", "HTTP listen address")
		resultsDir   = flag.String("results", "", "directory for persisted job results (empty = in-memory only)")
		maxJobs      = flag.Int("max-jobs", 2, "jobs running concurrently")
		queueDepth   = flag.Int("queue-depth", 16, "queued jobs before submissions get 429")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job timeout (0 = none)")
		maxTimeout   = flag.Duration("max-job-timeout", time.Hour, "cap on any job's timeout (0 = no cap)")
		maxWorkers   = flag.Int("max-job-workers", 0, "cap on one job's exploration workers (0 = no cap)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs before cancelling them")
		sinkInterval = flag.Duration("sink-interval", 10*time.Second, "telemetry sampling interval for -sink fan-out")
	)
	var sinkSpecs obs.SinkSpecList
	flag.Var(&sinkSpecs, "sink", "attach a telemetry sink (repeatable): stdout, stderr, jsonl:PATH, push:URL")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "paracrashd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *maxJobs < 1 || *queueDepth < 1 {
		fatalf("-max-jobs and -queue-depth must be >= 1 (got %d, %d)", *maxJobs, *queueDepth)
	}
	if *jobTimeout < 0 || *maxTimeout < 0 || *drainTimeout < 0 {
		fatalf("timeouts must be >= 0")
	}
	if len(sinkSpecs) > 0 && *sinkInterval <= 0 {
		fatalf("-sink-interval must be > 0 when sinks are attached, got %v", *sinkInterval)
	}

	store, warns := serve.OpenStore(*resultsDir)
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, "paracrashd: warning:", w)
	}

	run := obs.NewRun()
	sched := serve.NewScheduler(serve.SchedulerConfig{
		MaxConcurrent:  *maxJobs,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		MaxJobWorkers:  *maxWorkers,
	}, store, run)

	// Telemetry fan-out: the scheduler's router already aggregates the
	// daemon run and every live job; -sink attaches push-style outputs and
	// starts the sampling loop (the pull-style /metrics endpoint needs
	// neither).
	router := sched.Router()
	for _, spec := range sinkSpecs {
		sink, closer, err := obs.ParseSinkSpec(spec)
		if err != nil {
			fatalf("%v", err)
		}
		router.AddSink(sink)
		defer func() { _ = closer() }()
	}
	if len(sinkSpecs) > 0 {
		router.Start(*sinkInterval)
	}
	defer router.Close()

	sched.Start()

	// Re-enqueue jobs a previous daemon left queued or running: explore jobs
	// resume from their checkpoint journal, others restart from scratch.
	for _, j := range store.Interrupted() {
		if err := sched.Resubmit(j.ID); err != nil {
			fmt.Fprintf(os.Stderr, "paracrashd: warning: resubmit interrupted job %s: %v\n", j.ID, err)
		} else {
			fmt.Fprintf(os.Stderr, "paracrashd: resubmitted interrupted job %s (%s)\n", j.ID, j.Request.Kind)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(sched, store, run)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	loaded := len(store.List())
	fmt.Fprintf(os.Stderr, "paracrashd: listening on %s (results=%q, %d persisted jobs loaded, %d slots, queue %d, /metrics exposed)\n",
		*addr, *resultsDir, loaded, *maxJobs, *queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "paracrashd: %v: draining (up to %v)\n", sig, *drainTimeout)
	case err := <-errc:
		fatalf("serve: %v", err)
	}

	// Drain first — the HTTP listener stays up so status queries and event
	// streams keep working while in-flight jobs finish — then shut down.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sched.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "paracrashd: drain expired, in-flight jobs cancelled: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "paracrashd: stopped")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paracrashd: "+format+"\n", args...)
	os.Exit(2)
}
