// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Absolute times differ from the paper's testbed (the substrate here
// is a simulator), but the relative shape — which file systems are worse,
// how pruning and incremental reconstruction pay off, how exploration
// scales with servers — is the reproduction target; see EXPERIMENTS.md.
//
// Run with:
//
//	go test -bench=. -benchmem
package paracrash_test

import (
	"fmt"
	"runtime"
	"testing"

	"paracrash/internal/exps"
	core "paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// BenchmarkTable1_Classification measures the pairwise Table 1
// classification embedded in a full ARVR/BeeGFS run (the classifier work
// dominates once a state fails).
func BenchmarkTable1_Classification(b *testing.B) {
	prog, _ := exps.ProgramByName("ARVR")
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		rep, err := exps.RunOne("beegfs", prog, core.DefaultOptions(), h5p, exps.ConfigFor("beegfs"))
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Bugs) == 0 {
			b.Fatal("no bugs classified")
		}
	}
}

// BenchmarkTable3_BugDiscovery runs the full 11-program × 6-file-system
// matrix and aggregates the discovered bugs — the whole Table 3.
func BenchmarkTable3_BugDiscovery(b *testing.B) {
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		rows := exps.Table3(core.DefaultOptions(), h5p)
		if len(rows) < 10 {
			b.Fatalf("only %d bug rows discovered", len(rows))
		}
		b.ReportMetric(float64(len(rows)), "bugs")
	}
}

// BenchmarkFig5_Models checks the Figure 5 example against all four
// consistency models.
func BenchmarkFig5_Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := exps.Fig5()
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig8_<fs> runs the full test-program column for one file system
// (the per-file-system group of Figure 8 bars).
func benchmarkFig8(b *testing.B, fsName string) {
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, prog := range exps.Programs() {
			rep, err := exps.RunOne(fsName, prog, core.DefaultOptions(), h5p, exps.ConfigFor(fsName))
			if err != nil {
				b.Fatal(err)
			}
			total += rep.Inconsistent
		}
		b.ReportMetric(float64(total), "inconsistent")
	}
}

func BenchmarkFig8_BeeGFS(b *testing.B)    { benchmarkFig8(b, "beegfs") }
func BenchmarkFig8_OrangeFS(b *testing.B)  { benchmarkFig8(b, "orangefs") }
func BenchmarkFig8_GlusterFS(b *testing.B) { benchmarkFig8(b, "glusterfs") }
func BenchmarkFig8_GPFS(b *testing.B)      { benchmarkFig8(b, "gpfs") }
func BenchmarkFig8_Lustre(b *testing.B)    { benchmarkFig8(b, "lustre") }
func BenchmarkFig8_Ext4(b *testing.B)      { benchmarkFig8(b, "ext4") }

// BenchmarkFig9_TraceARVR measures the multi-layer trace capture of the
// ARVR program across the four PFS flavours of Figures 2/9.
func BenchmarkFig9_TraceARVR(b *testing.B) {
	h5p := workloads.DefaultH5Params()
	prog, _ := exps.ProgramByName("ARVR")
	for i := 0; i < b.N; i++ {
		for _, fsName := range []string{"beegfs", "orangefs", "glusterfs", "gpfs"} {
			if _, err := exps.TraceDump(fsName, prog, h5p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig10_<mode> compares the exploration strategies on ARVR/BeeGFS
// (the Figure 10 contrast; §6.4's headline numbers).
func benchmarkFig10(b *testing.B, mode core.Mode) {
	prog, _ := exps.ProgramByName("ARVR")
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.Mode = mode
		rep, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Stats.StatesChecked), "states")
		b.ReportMetric(float64(rep.Stats.ServerRestores), "restores")
	}
}

func BenchmarkFig10_BruteForce(b *testing.B) { benchmarkFig10(b, core.ModeBrute) }
func BenchmarkFig10_Pruning(b *testing.B)    { benchmarkFig10(b, core.ModePruning) }
func BenchmarkFig10_Optimized(b *testing.B)  { benchmarkFig10(b, core.ModeOptimized) }

// BenchmarkFig11_Servers<N> measures exploration cost as the cluster grows
// (Figure 11's scalability curve): H5-create on BeeGFS with shrinking
// stripes, end-of-execution crash fronts, optimized exploration.
func benchmarkFig11(b *testing.B, servers int) {
	prog, _ := exps.ProgramByName("H5-create")
	h5p := workloads.DefaultH5Params()
	conf := exps.ConfigFor("beegfs")
	conf.MetaServers = servers / 2
	conf.StorageServers = servers - servers/2
	conf.StripeSize = 128 * 4 / int64(servers)
	if conf.StripeSize < 16 {
		conf.StripeSize = 16
	}
	opts := core.DefaultOptions()
	opts.Mode = core.ModeOptimized
	opts.Emulator.FrontMode = core.FrontEnd
	for i := 0; i < b.N; i++ {
		rep, err := exps.RunOne("beegfs", prog, opts, h5p, conf)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Stats.StatesChecked), "states")
	}
}

func BenchmarkFig11_Servers4(b *testing.B)  { benchmarkFig11(b, 4) }
func BenchmarkFig11_Servers8(b *testing.B)  { benchmarkFig11(b, 8) }
func BenchmarkFig11_Servers16(b *testing.B) { benchmarkFig11(b, 16) }
func BenchmarkFig11_Servers32(b *testing.B) { benchmarkFig11(b, 32) }

// BenchmarkTable2_Deployments measures stack construction and preamble
// execution for every configured file system (Table 2's deployments).
func BenchmarkTable2_Deployments(b *testing.B) {
	prog, _ := exps.ProgramByName("H5-create")
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		for _, fsName := range exps.FSNames() {
			if _, err := exps.TraceDump(fsName, prog, h5p); err != nil {
				b.Fatal(fmt.Errorf("%s: %w", fsName, err))
			}
		}
	}
}

// BenchmarkExploreParallel contrasts the serial engine against the
// worker-pool engine on the heaviest configuration — brute-force ARVR on
// BeeGFS, where every generated crash state is reconstructed and checked —
// for 1 worker and one worker per CPU. The reports are identical by
// construction (see TestParallelMatchesSerial); this measures the wall-clock
// payoff.
func BenchmarkExploreParallel(b *testing.B) {
	prog, _ := exps.ProgramByName("ARVR")
	h5p := workloads.DefaultH5Params()
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var ws []int
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	for _, w := range ws {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Mode = core.ModeBrute
			opts.Workers = w
			for i := 0; i < b.N; i++ {
				rep, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Stats.StatesChecked), "states")
			}
		})
	}
}

// BenchmarkExploreRepresentative contrasts representative-state exploration
// against exhaustive checking on the same heaviest configuration as
// BenchmarkExploreParallel. With the knob on, most generated states are
// attributed from their recovered-content equivalence class instead of
// being reconstructed, so "checked" collapses toward the class count while
// "covered" (checked + attributed) stays at the brute-force total; the
// reports are equivalent by construction (see TestRepresentativeDifferential*).
func BenchmarkExploreRepresentative(b *testing.B) {
	prog, _ := exps.ProgramByName("ARVR")
	h5p := workloads.DefaultH5Params()
	for _, bc := range []struct {
		name  string
		norep bool
	}{{"exhaustive", true}, {"representative", false}} {
		b.Run(bc.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Mode = core.ModeBrute
			opts.DisableRepresentative = bc.norep
			for i := 0; i < b.N; i++ {
				rep, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Stats.StatesChecked), "checked")
				b.ReportMetric(float64(rep.Stats.StatesChecked+rep.Stats.StatesDeduped), "covered")
				b.ReportMetric(float64(rep.Stats.ServerRestores), "restores")
			}
		})
	}
}

// BenchmarkExploreIncremental contrasts O(delta) incremental reconstruction
// against the legacy full-restore engine on the same heaviest configuration
// as BenchmarkExploreParallel. With the knob on, moving between crash states
// costs one O(1) prefix-root restore per *changed* server plus the ops past
// the shared prefix, instead of restoring every server and replaying every
// kept op; "restores" and "replayed" collapse while the reports stay
// verdict-identical by construction (see TestIncrementalEngineEquivalence).
func BenchmarkExploreIncremental(b *testing.B) {
	prog, _ := exps.ProgramByName("ARVR")
	h5p := workloads.DefaultH5Params()
	for _, bc := range []struct {
		name  string
		noinc bool
	}{{"full-restore", true}, {"incremental", false}} {
		b.Run(bc.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Mode = core.ModeBrute
			opts.DisableIncremental = bc.noinc
			for i := 0; i < b.N; i++ {
				rep, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
				if err != nil {
					b.Fatal(err)
				}
				covered := rep.Stats.StatesChecked + rep.Stats.StatesDeduped
				b.ReportMetric(float64(rep.Stats.ServerRestores), "restores")
				b.ReportMetric(float64(rep.Stats.OpsReplayed), "replayed")
				if covered > 0 {
					b.ReportMetric(float64(rep.Stats.ServerRestores)/float64(covered), "restores/state")
				}
			}
		})
	}
}

// --- Ablation benchmarks for DESIGN.md's called-out design choices ---------

// BenchmarkAblation_SemanticPruning contrasts the object-map victim filter
// on and off (paper §5.3's semantic pruning) on the parallel resize, whose
// slab writes give the filter data-chunk victims to skip.
func benchmarkAblationSemantic(b *testing.B, disable bool) {
	prog, _ := exps.ProgramByName("H5-parallel-resize")
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.DisableSemanticPruning = disable
		rep, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Stats.StatesGenerated), "generated")
		b.ReportMetric(float64(rep.Stats.StatesChecked), "states")
	}
}

func BenchmarkAblation_SemanticPruningOn(b *testing.B)  { benchmarkAblationSemantic(b, false) }
func BenchmarkAblation_SemanticPruningOff(b *testing.B) { benchmarkAblationSemantic(b, true) }

// BenchmarkAblation_TSP contrasts the greedy tour against recording-order
// visiting in the optimized mode: the tour minimises per-server diffs, so
// server restores drop.
func benchmarkAblationTSP(b *testing.B, disable bool) {
	prog, _ := exps.ProgramByName("ARVR")
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.Mode = core.ModeOptimized
		opts.DisableTSP = disable
		rep, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Stats.ServerRestores), "restores")
	}
}

func BenchmarkAblation_TSPOn(b *testing.B)  { benchmarkAblationTSP(b, false) }
func BenchmarkAblation_TSPOff(b *testing.B) { benchmarkAblationTSP(b, true) }

// BenchmarkAblation_FrontMode contrasts all-cuts crash fronts against
// end-of-execution fronts: cuts find in-flight atomicity splits at the
// cost of a larger state space.
func benchmarkAblationFront(b *testing.B, mode core.FrontMode) {
	prog, _ := exps.ProgramByName("CR")
	h5p := workloads.DefaultH5Params()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.Emulator.FrontMode = mode
		rep, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Stats.StatesGenerated), "generated")
		b.ReportMetric(float64(len(rep.Bugs)), "bugs")
	}
}

func BenchmarkAblation_AllCutFronts(b *testing.B) { benchmarkAblationFront(b, core.FrontAllCuts) }
func BenchmarkAblation_EndFrontOnly(b *testing.B) { benchmarkAblationFront(b, core.FrontEnd) }
