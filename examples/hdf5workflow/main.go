// hdf5workflow: cross-layer testing of an HDF5 program over a parallel
// file system — the paper's headline capability.
//
// The H5-resize program grows a dataset through the full stack (HDF5 over
// MPI-IO over Lustre). ParaCrash checks every crash state first against
// the HDF5 baseline-consistency golden states, then against the PFS causal
// states, attributing each inconsistency to the responsible layer: even on
// Lustre — which is clean for every POSIX program — the library's
// unordered metadata flush corrupts the resized dataset (Table 3, rows
// 13-14).
package main

import (
	"fmt"
	"log"

	"paracrash"
)

func main() {
	params := paracrash.DefaultH5Params()
	// 10x10 elements = 7 chunks: the resize splits the dataset's chunk
	// B-tree, the paper's dimension-sensitive bug #14.
	params.ResizeRows, params.ResizeCols = 10, 10

	for _, fsName := range []string{"lustre", "beegfs"} {
		rec := paracrash.NewRecorder()
		fs, err := paracrash.NewFileSystem(fsName, paracrash.ConfigFor(fsName), rec)
		if err != nil {
			log.Fatal(err)
		}
		w := paracrash.H5Resize(params)
		report, err := paracrash.Run(fs, w.Library(), w, paracrash.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=============== %s ===============\n", fsName)
		fmt.Print(report.Format())
		fmt.Printf("library-attributed inconsistencies: %d of %d\n\n",
			report.LibOnly, report.Inconsistent)
	}
}
