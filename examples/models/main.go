// models: the paper's Figure 5 walkthrough of the four crash-consistency
// models.
//
// Two processes run
//
//	P0: write(fd1, "A"); send(buf); write(fd2, "B")
//	P1: recv(buf); write(fd3, "C"); fsync(fd3)
//
// and the same execution is checked against each model on the ext4
// baseline. Strict consistency is violated (B can persist while the
// concurrent C is lost — a different schedule's state, but not this
// front's); commit, causal and baseline all accept every reachable crash
// state, matching the paper's observation that ext4 with data journaling
// is causally consistent.
package main

import (
	"fmt"
	"log"

	"paracrash"
)

func main() {
	for _, model := range []paracrash.Model{
		paracrash.ModelStrict, paracrash.ModelCommit,
		paracrash.ModelCausal, paracrash.ModelBaseline,
	} {
		rec := paracrash.NewRecorder()
		fs, err := paracrash.NewFileSystem("ext4", paracrash.ConfigFor("ext4"), rec)
		if err != nil {
			log.Fatal(err)
		}
		opts := paracrash.DefaultOptions()
		opts.PFSModel = model
		rep, err := paracrash.Run(fs, nil, paracrash.Fig5Program(), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s legal states: %2d   inconsistent crash states: %d\n",
			model, rep.Stats.LegalPFSStates, rep.Inconsistent)
	}
	fmt.Println("\nWith strict consistency all three writes must be preserved;")
	fmt.Println("commit guarantees only the fsynced C; causal adds A (it happens")
	fmt.Println("before C); baseline would allow losing all three.")
}
