// Quickstart: find the paper's Figure 2 crash-consistency bugs in BeeGFS
// with a dozen lines of ParaCrash.
//
// The ARVR program (atomic replace via rename — the checkpointing pattern)
// runs against a simulated BeeGFS deployment with two metadata and two
// storage servers. ParaCrash traces every layer, emulates crashes by
// replaying persistence-legal subsets of the servers' local I/O, compares
// each recovered state against the causal-consistency golden states, and
// prints the two data-loss bugs of the paper's Table 3 (rows 1-2).
package main

import (
	"fmt"
	"log"

	"paracrash"
)

func main() {
	rec := paracrash.NewRecorder()
	fs, err := paracrash.NewFileSystem("beegfs", paracrash.DefaultConfig(), rec)
	if err != nil {
		log.Fatal(err)
	}

	report, err := paracrash.Run(fs, nil, paracrash.ARVR(), paracrash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Format())
	fmt.Println("\nInconsistent crash states in detail:")
	for i, st := range report.States {
		fmt.Printf("  %d. [%s] victims=%v\n     %s\n", i+1, st.Layer, st.Victims, st.Consequence)
	}
}
