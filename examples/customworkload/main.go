// customworkload: bring your own test program.
//
// A Workload is a preamble (initial state) plus a traced body driving the
// POSIX-like client API. This example tests a *defensive* variant of the
// ARVR pattern that fsyncs the temporary file before the rename — the fix
// application developers deploy against the paper's bug #1 — and shows
// that the fsync closes the append/rename reordering on BeeGFS while the
// rename/unlink reordering (bug #2, inside the PFS) remains.
package main

import (
	"fmt"
	"log"

	"paracrash"
)

// safeARVR is ARVR with an fsync barrier between the write and the rename.
type safeARVR struct{}

func (safeARVR) Name() string { return "ARVR+fsync" }

func (safeARVR) Preamble(fs paracrash.FileSystem) error {
	c := fs.Client(0)
	if err := c.Create("/foo"); err != nil {
		return err
	}
	if err := c.WriteAt("/foo", 0, []byte("old-old-old-old-old!")); err != nil {
		return err
	}
	return c.Close("/foo")
}

func (safeARVR) Run(fs paracrash.FileSystem) error {
	c := fs.Client(0)
	if err := c.Create("/tmp"); err != nil {
		return err
	}
	if err := c.WriteAt("/tmp", 0, []byte("new-new-new-new-new!")); err != nil {
		return err
	}
	// The defensive barrier: persist the data before exposing it.
	if err := c.Fsync("/tmp"); err != nil {
		return err
	}
	if err := c.Close("/tmp"); err != nil {
		return err
	}
	return c.Rename("/tmp", "/foo")
}

func main() {
	run := func(w paracrash.Workload) *paracrash.Report {
		rec := paracrash.NewRecorder()
		fs, err := paracrash.NewFileSystem("beegfs", paracrash.DefaultConfig(), rec)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := paracrash.Run(fs, nil, w, paracrash.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	plain := run(paracrash.ARVR())
	safe := run(safeARVR{})

	fmt.Printf("plain ARVR on BeeGFS:  %d inconsistent states, %d bugs\n",
		plain.Inconsistent, len(plain.Bugs))
	for _, b := range plain.Bugs {
		fmt.Printf("   %s: %s -> %s\n", b.Kind, b.OpA, b.OpB)
	}
	fmt.Printf("ARVR+fsync on BeeGFS:  %d inconsistent states, %d bugs\n",
		safe.Inconsistent, len(safe.Bugs))
	for _, b := range safe.Bugs {
		fmt.Printf("   %s: %s -> %s\n", b.Kind, b.OpA, b.OpB)
	}
	fmt.Println("\nThe fsync pins the appended data before the rename can persist,")
	fmt.Println("closing bug #1. Bug #2 lives inside the file system and survives —")
	fmt.Println("and the checker notes that BeeGFS's remote fsync covers only the")
	fmt.Println("chunk data, not the metadata entry, so the synced file can still")
	fmt.Println("vanish wholesale (the link -> append reordering).")
}
