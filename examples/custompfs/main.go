// custompfs: plug your own parallel file system into ParaCrash.
//
// This example implements "mirrorfs", a deliberately naive two-replica
// file system: every client operation is applied to both replicas with no
// synchronisation protocol, reads load-balance across the replicas by path
// hash, and there is no fsck. ParaCrash immediately pinpoints the design
// flaw: the replicas' updates persist independently, so a crash between
// them leaves the survivors disagreeing, and whichever replica a path
// happens to read from serves the stale or the fresh copy.
//
// The implementation shows the full FileSystem contract: keep ALL state in
// the embedded Cluster's server stores so that snapshot/restore-based
// crash reconstruction is automatically faithful.
package main

import (
	"fmt"
	"hash/fnv"
	"log"

	root "paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// mirrorFS replicates a flat namespace across two servers.
type mirrorFS struct {
	*pfs.Cluster
	conf pfs.Config
}

func newMirrorFS(conf pfs.Config, rec *trace.Recorder) *mirrorFS {
	return &mirrorFS{
		Cluster: pfs.NewCluster(conf, rec, []string{"replica/0", "replica/1"}),
		conf:    conf,
	}
}

func (f *mirrorFS) Name() string              { return "mirrorfs" }
func (f *mirrorFS) Config() pfs.Config        { return f.conf }
func (f *mirrorFS) Recorder() *trace.Recorder { return f.Rec }

func (f *mirrorFS) Client(id int) pfs.Client {
	return &mirrorClient{fs: f, proc: fmt.Sprintf("client/%d", id)}
}

// Recover does nothing: mirrorfs ships no fsck — the design flaw under
// test.
func (f *mirrorFS) Recover() error { return nil }

// replicaFor load-balances reads across the replicas by path hash.
func (f *mirrorFS) replicaFor(p string) *vfs.FS {
	h := fnv.New32a()
	h.Write([]byte(p))
	return f.FSServers[int(h.Sum32())%2].FS
}

// Mount reads each path from its read replica: the union namespace serves
// whatever that replica persisted.
func (f *mirrorFS) Mount() (*pfs.Tree, error) {
	t := pfs.NewTree()
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		for _, p := range f.FSServers[i].FS.Walk() {
			if p == "/" || seen[p] {
				continue
			}
			seen[p] = true
			src := f.replicaFor(p)
			if !src.Exists(p) {
				continue // the read replica never persisted this path
			}
			if src.IsDir(p) {
				t.AddDir(p)
				continue
			}
			data, err := src.Read(p)
			if err != nil {
				return nil, err
			}
			t.AddFile(p, data)
		}
	}
	return t, nil
}

// mirrorClient applies every operation to both replicas, primary first.
type mirrorClient struct {
	fs   *mirrorFS
	proc string
}

func (c *mirrorClient) Proc() string { return c.proc }

// both runs op against each replica inside its own RPC, so the two local
// writes are separate persistence events — the flaw under test.
func (c *mirrorClient) both(name, path, path2 string, off int64, data []byte, op vfs.Op, tag string) error {
	f := c.fs
	f.RecordClientOp(c.proc, name, path, path2, off, data)
	defer f.PopClient(c.proc)
	var firstErr error
	for i := 0; i < 2; i++ {
		srv := f.FSServers[i]
		f.RPC(c.proc, srv.Proc, func() {
			if err := srv.Do(f.Rec, op, path, tag); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	return firstErr
}

func (c *mirrorClient) Create(path string) error {
	return c.both("creat", path, "", 0, nil, vfs.Op{Kind: vfs.OpCreate, Path: path}, "file")
}
func (c *mirrorClient) Mkdir(path string) error {
	return c.both("mkdir", path, "", 0, nil, vfs.Op{Kind: vfs.OpMkdir, Path: path}, "dir")
}
func (c *mirrorClient) WriteAt(path string, off int64, data []byte) error {
	return c.both("pwrite", path, "", off, data,
		vfs.Op{Kind: vfs.OpWrite, Path: path, Offset: off, Data: data}, "data")
}
func (c *mirrorClient) Append(path string, data []byte) error {
	return c.both("append", path, "", 0, data, vfs.Op{Kind: vfs.OpAppend, Path: path, Data: data}, "data")
}
func (c *mirrorClient) Read(path string) ([]byte, error) {
	return c.fs.replicaFor(path).Read(path)
}
func (c *mirrorClient) Rename(from, to string) error {
	return c.both("rename", from, to, 0, nil, vfs.Op{Kind: vfs.OpRename, Path: from, Path2: to}, "dentry")
}
func (c *mirrorClient) Unlink(path string) error {
	return c.both("unlink", path, "", 0, nil, vfs.Op{Kind: vfs.OpUnlink, Path: path}, "dentry")
}
func (c *mirrorClient) Fsync(path string) error {
	f := c.fs
	op := f.RecordClientOp(c.proc, "fsync", path, "", 0, nil)
	op.Sync = true
	defer f.PopClient(c.proc)
	for i := 0; i < 2; i++ {
		srv := f.FSServers[i]
		f.RPC(c.proc, srv.Proc, func() { _ = srv.DoSync(f.Rec, path, path, false) })
	}
	return nil
}
func (c *mirrorClient) Close(path string) error {
	c.fs.RecordClientOp(c.proc, "close", path, "", 0, nil)
	c.fs.PopClient(c.proc)
	return nil
}

func main() {
	rec := root.NewRecorder()
	fs := newMirrorFS(root.DefaultConfig(), rec)
	report, err := root.Run(fs, nil, root.ARVR(), root.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Format())
	fmt.Println("\nmirrorfs replicates every op to both replicas but persists them")
	fmt.Println("independently; a crash between the two applications diverges the")
	fmt.Println("replicas, and hash-routed reads then serve a mix of old and new.")
}
