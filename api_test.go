package paracrash_test

import (
	"strings"
	"testing"

	"paracrash"
)

// TestPublicAPIQuickstart exercises the README's quick-start path.
func TestPublicAPIQuickstart(t *testing.T) {
	rec := paracrash.NewRecorder()
	fs, err := paracrash.NewFileSystem("beegfs", paracrash.DefaultConfig(), rec)
	if err != nil {
		t.Fatal(err)
	}
	report, err := paracrash.Run(fs, nil, paracrash.ARVR(), paracrash.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Bugs) != 2 {
		t.Fatalf("quickstart should find 2 bugs, got %d", len(report.Bugs))
	}
	out := report.Format()
	for _, want := range []string{"ParaCrash report", "reordering", "append(chunk)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestPublicAPICrossLayer exercises the library-attached path.
func TestPublicAPICrossLayer(t *testing.T) {
	rec := paracrash.NewRecorder()
	fs, err := paracrash.NewFileSystem("lustre", paracrash.ConfigFor("lustre"), rec)
	if err != nil {
		t.Fatal(err)
	}
	w := paracrash.H5Delete(paracrash.DefaultH5Params())
	report, err := paracrash.Run(fs, w.Library(), w, paracrash.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.LibOnly == 0 {
		t.Fatal("cross-layer run should attribute inconsistencies to the library")
	}
	foundHDF5 := false
	for _, b := range report.Bugs {
		if b.Layer == "hdf5" {
			foundHDF5 = true
		}
	}
	if !foundHDF5 {
		t.Fatal("no hdf5-layer bug reported")
	}
}

// TestPublicAPIEveryFS constructs every advertised file system.
func TestPublicAPIEveryFS(t *testing.T) {
	for _, name := range paracrash.FileSystems() {
		fs, err := paracrash.NewFileSystem(name, paracrash.ConfigFor(name), paracrash.NewRecorder())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fs.Name() != name {
			t.Fatalf("NewFileSystem(%q).Name() = %q", name, fs.Name())
		}
	}
	if _, err := paracrash.NewFileSystem("nope", paracrash.DefaultConfig(), paracrash.NewRecorder()); err == nil {
		t.Fatal("unknown file system must error")
	}
}

// TestPublicAPIModels runs the Figure 5 example through each model.
func TestPublicAPIModels(t *testing.T) {
	legal := map[paracrash.Model]int{}
	for _, m := range []paracrash.Model{
		paracrash.ModelStrict, paracrash.ModelCommit,
		paracrash.ModelCausal, paracrash.ModelBaseline,
	} {
		fs, err := paracrash.NewFileSystem("ext4", paracrash.ConfigFor("ext4"), paracrash.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		opts := paracrash.DefaultOptions()
		opts.PFSModel = m
		rep, err := paracrash.Run(fs, nil, paracrash.Fig5Program(), opts)
		if err != nil {
			t.Fatal(err)
		}
		legal[m] = rep.Stats.LegalPFSStates
	}
	// Weaker models allow more legal states (paper §4.4.3).
	if !(legal[paracrash.ModelStrict] < legal[paracrash.ModelCausal] &&
		legal[paracrash.ModelCausal] <= legal[paracrash.ModelCommit] &&
		legal[paracrash.ModelCommit] < legal[paracrash.ModelBaseline]) {
		t.Fatalf("legal-state counts not monotonic in model strength: %v", legal)
	}
}
